"""Outlier-interval analysis.

Algorithm 1 stops at a coverage threshold "to skip outliers", and the
paper flags "the issue of alternatives for dealing with outlier
intervals" as open.  This module characterizes what the threshold
skipped: for each phase, the uncovered intervals are classified as

- **idle** — no sampled activity at all (barriers, I/O waits);
- **foreign** — dominated by a function selected for a *different*
  phase (cluster-boundary mixing);
- **unique** — activity in functions selected nowhere (genuinely
  unusual behaviour worth a human look).

The classification turns the silent 5 % into an actionable report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.pipeline import AnalysisResult


@dataclass(frozen=True)
class OutlierInterval:
    """One uncovered interval and why it was left out."""

    interval: int
    phase_id: int
    kind: str  # "idle" | "foreign" | "unique"
    dominant_function: str  # "" for idle
    self_seconds: float


@dataclass(frozen=True)
class OutlierReport:
    """All uncovered intervals across phases."""

    outliers: Tuple[OutlierInterval, ...]
    total_intervals: int

    @property
    def uncovered_pct(self) -> float:
        return 100.0 * len(self.outliers) / max(1, self.total_intervals)

    def by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {"idle": 0, "foreign": 0, "unique": 0}
        for outlier in self.outliers:
            counts[outlier.kind] += 1
        return counts

    def unique_functions(self) -> List[str]:
        """Functions behind 'unique' outliers — candidate extra sites."""
        return sorted({o.dominant_function for o in self.outliers
                       if o.kind == "unique"})


def analyze_outliers(result: AnalysisResult) -> OutlierReport:
    """Classify every interval Algorithm 1 left uncovered."""
    data = result.interval_data
    selected_per_phase = [
        {s.function for s in sites} for sites in result.selection.per_phase
    ]
    all_selected = set().union(*selected_per_phase) if selected_per_phase else set()
    func_index = {name: j for j, name in enumerate(data.functions)}

    covered: set = set()
    for selected in result.selection.all_sites():
        covered.update(selected.covered_intervals)

    outliers: List[OutlierInterval] = []
    for phase in result.phase_model.phases:
        for interval in phase.interval_indices:
            if interval in covered:
                continue
            row = data.self_time[interval]
            total = float(row.sum())
            if total <= 0.0:
                outliers.append(OutlierInterval(interval, phase.phase_id,
                                                "idle", "", 0.0))
                continue
            dominant = data.functions[int(np.argmax(row))]
            kind = "foreign" if dominant in all_selected else "unique"
            outliers.append(OutlierInterval(interval, phase.phase_id, kind,
                                            dominant, total))
    outliers.sort(key=lambda o: o.interval)
    return OutlierReport(outliers=tuple(outliers),
                         total_intervals=data.n_intervals)
