"""From-scratch k-means (k-means++ initialization, Lloyd iterations).

Implemented directly on NumPy — vectorized distance computation, no
scikit-learn dependency — because the clustering itself is part of the
reproduced system.  Deterministic under a fixed seed; multiple restarts
keep the best inertia.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.util.errors import ClusteringError, ValidationError


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit."""

    k: int
    centroids: np.ndarray  # (k, n_attributes)
    labels: np.ndarray  # (n_points,) int
    inertia: float  # within-cluster sum of squared distances (WCSS)
    n_iter: int

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, ``(n_points, n_centers)``.

    Uses the expansion ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 with a
    clamp at zero for float round-off.
    """
    x_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centers, centers)[None, :]
    d = x_sq - 2.0 * points @ centers.T + c_sq
    np.maximum(d, 0.0, out=d)
    return d


def _kmeanspp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D^2 sampling."""
    n = points.shape[0]
    centers = np.empty((k, points.shape[1]))
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest = _pairwise_sq_dists(points, centers[:1])[:, 0]
    for i in range(1, k):
        total = closest.sum()
        if total <= 0.0:
            # All remaining points coincide with chosen centers; any pick works.
            idx = int(rng.integers(n))
        else:
            idx = int(rng.choice(n, p=closest / total))
        centers[i] = points[idx]
        np.minimum(closest, _pairwise_sq_dists(points, centers[i : i + 1])[:, 0], out=closest)
    return centers


def _lloyd(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    k = centers.shape[0]
    labels = np.zeros(points.shape[0], dtype=int)
    prev_inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        dists = _pairwise_sq_dists(points, centers)
        labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(points.shape[0]), labels].sum())

        new_centers = centers.copy()
        for j in range(k):
            members = points[labels == j]
            if members.shape[0] == 0:
                # Empty cluster: reseed at the point farthest from its center.
                farthest = int(dists.min(axis=1).argmax())
                new_centers[j] = points[farthest]
            else:
                new_centers[j] = members.mean(axis=0)

        shift = float(np.linalg.norm(new_centers - centers))
        centers = new_centers
        if shift <= tol or abs(prev_inertia - inertia) <= tol:
            break
        prev_inertia = inertia

    # Final assignment; repair any empty cluster by reassigning to it the
    # point farthest from its current center (taken from a cluster with
    # more than one member), so callers can rely on non-empty clusters
    # whenever n >= k.
    dists = _pairwise_sq_dists(points, centers)
    labels = dists.argmin(axis=1)
    n = points.shape[0]
    for j in range(k):
        sizes = np.bincount(labels, minlength=k)
        if sizes[j] > 0:
            continue
        movable = sizes[labels] > 1
        if not movable.any():
            break  # unreachable when n >= k, defensive otherwise
        point_dists = dists[np.arange(n), labels]
        donor = int(np.where(movable, point_dists, -1.0).argmax())
        labels[donor] = j
        centers[j] = points[donor]
    deltas = points - centers[labels]
    inertia = float(np.einsum("ij,ij->", deltas, deltas))
    return KMeansResult(k=k, centroids=centers, labels=labels, inertia=inertia, n_iter=n_iter)


def kmeans(
    points: np.ndarray,
    k: int,
    seed: Union[int, np.random.Generator] = 0,
    n_init: int = 8,
    max_iter: int = 200,
    tol: float = 1e-9,
) -> KMeansResult:
    """Fit k-means with ``n_init`` restarts, keeping the lowest inertia.

    Raises :class:`ClusteringError` if there are fewer points than
    clusters; duplicate points are fine.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValidationError("points must be a 2-D array")
    if k < 1:
        raise ValidationError("k must be >= 1")
    if points.shape[0] < k:
        raise ClusteringError(f"{points.shape[0]} points cannot form {k} clusters")
    if n_init < 1:
        raise ValidationError("n_init must be >= 1")

    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)

    if k == 1:
        center = points.mean(axis=0, keepdims=True)
        inertia = float(((points - center) ** 2).sum())
        return KMeansResult(
            k=1,
            centroids=center,
            labels=np.zeros(points.shape[0], dtype=int),
            inertia=inertia,
            n_iter=1,
        )

    best: Optional[KMeansResult] = None
    for _ in range(n_init):
        centers = _kmeanspp_init(points, k, rng)
        result = _lloyd(points, centers, max_iter=max_iter, tol=tol)
        if best is None or result.inertia < best.inertia:
            best = result
    assert best is not None
    return best
