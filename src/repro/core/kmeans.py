"""From-scratch k-means (k-means++ initialization, Lloyd iterations).

Implemented directly on NumPy — vectorized distance computation, no
scikit-learn dependency — because the clustering itself is part of the
reproduced system.  Deterministic under a fixed seed; multiple restarts
keep the best inertia.

All ``n_init`` restarts run *batched*: k-means++ seeding draws one
uniform vector per center for the whole restart block (inverse-CDF
sampling instead of per-restart ``rng.choice``), and Lloyd iterations
update every restart's centroids through a single one-hot matmul —
there is no per-cluster Python loop.  Distance tensors are kept
center-major (``(rows, k, n_points)``) so every reduction runs over
the long contiguous point axis; restart blocks are sized by a memory
budget so batching stays bounded at large n.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from repro.util.errors import ClusteringError, ValidationError

Seed = Union[int, np.random.Generator, np.random.SeedSequence]

#: Cap on the number of floats in one (rows, n_points, k) distance
#: tensor; restart blocks are sized so batching never costs more than
#: ~64 MiB regardless of input size.
_BATCH_BUDGET = 8 * 1024 * 1024


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of one k-means fit."""

    k: int
    centroids: np.ndarray  # (k, n_attributes)
    labels: np.ndarray  # (n_points,) int
    inertia: float  # within-cluster sum of squared distances (WCSS)
    n_iter: int

    def cluster_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.k)


def _pairwise_sq_dists(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, ``(n_points, n_centers)``.

    Uses the expansion ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2 with a
    clamp at zero for float round-off.
    """
    x_sq = np.einsum("ij,ij->i", points, points)[:, None]
    c_sq = np.einsum("ij,ij->i", centers, centers)[None, :]
    d = x_sq - 2.0 * points @ centers.T + c_sq
    np.maximum(d, 0.0, out=d)
    return d


def _batch_sq_dists(points: np.ndarray, centers: np.ndarray,
                    x_sq: np.ndarray) -> np.ndarray:
    """Squared distances for a restart block: ``(rows, k, n_points)``.

    ``centers`` is ``(rows, k, d)``; ``x_sq`` the precomputed point
    norms.  One flattened ``(rows*k, n)`` BLAS matmul beats the
    equivalent einsum.  Center-major layout keeps the *point* axis
    innermost, so the per-cluster reductions downstream run over long
    contiguous vectors instead of length-k stubs (NumPy's reduce
    overhead on a tiny inner axis dwarfs the arithmetic).  Values may
    dip a hair below zero from round-off; callers that need exact
    non-negativity clamp themselves.
    """
    rows, k, dim = centers.shape
    flat = centers.reshape(rows * k, dim)
    c_sq = np.einsum("ij,ij->i", flat, flat)
    d = c_sq[:, None] - 2.0 * (flat @ points.T)
    d += x_sq[None, :]
    return d.reshape(rows, k, points.shape[0])


def _assign(dists: np.ndarray) -> tuple:
    """Labels and min distances from a ``(rows, k, n)`` tensor.

    A k-step elementwise tournament over the long point axis; ties go
    to the lowest cluster index, exactly like ``argmin``, but without
    argmin's per-point reduce overhead on the short cluster axis.
    """
    k = dists.shape[1]
    best = dists[:, 0, :].copy()
    labels = np.zeros(best.shape, dtype=np.intp)
    for j in range(1, k):
        dj = dists[:, j, :]
        closer = dj < best
        np.copyto(labels, j, where=closer)
        np.minimum(best, dj, out=best)
    return labels, best


def _kmeanspp_init_batch(points: np.ndarray, k: int, n_restarts: int,
                         rng: np.random.Generator,
                         x_sq: Optional[np.ndarray] = None) -> np.ndarray:
    """k-means++ seeding for a whole restart block: ``(R, k, d)``.

    D^2 sampling is done by inverse-CDF lookup on the per-restart
    cumulative distance mass — one uniform draw per restart per center
    instead of a per-restart ``rng.choice``.
    """
    n = points.shape[0]
    if x_sq is None:
        x_sq = np.einsum("ij,ij->i", points, points)
    centers = np.empty((n_restarts, k, points.shape[1]))
    first = rng.integers(n, size=n_restarts)
    centers[:, 0] = points[first]

    def sq_to(chosen: np.ndarray) -> np.ndarray:
        # (R, n) squared distances to one chosen center per restart —
        # built contiguous and updated in place (no strided temporaries).
        d = chosen @ points.T
        d *= -2.0
        d += x_sq[None, :]
        d += np.einsum("ij,ij->i", chosen, chosen)[:, None]
        np.maximum(d, 0.0, out=d)  # D^2 sampling weights must be >= 0
        return d

    closest = sq_to(centers[:, 0])
    for i in range(1, k):
        u = rng.random(n_restarts)
        cum = np.cumsum(closest, axis=1)
        totals = cum[:, -1]
        idx = np.minimum((cum < (u * totals)[:, None]).sum(axis=1), n - 1)
        # All remaining points coincide with chosen centers; any pick works.
        degenerate = totals <= 0.0
        if degenerate.any():
            idx[degenerate] = np.minimum((u[degenerate] * n).astype(np.int64), n - 1)
        centers[:, i] = points[idx]
        np.minimum(closest, sq_to(centers[:, i]), out=closest)
    return centers


def _restart_blocks(n_points: int, k: int, n_init: int) -> List[int]:
    """Restart block sizes under the memory budget (sum == n_init)."""
    block = max(1, min(n_init, _BATCH_BUDGET // max(1, n_points * k)))
    sizes = []
    done = 0
    while done < n_init:
        size = min(block, n_init - done)
        sizes.append(size)
        done += size
    return sizes


def _lloyd_batch_arrays(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
    x_sq: Optional[np.ndarray] = None,
) -> tuple:
    """Lloyd iterations for a whole restart block at once.

    ``centers`` is ``(rows, k, d)``; every row iterates until its own
    convergence (converged rows are frozen, not re-fit), so each result
    is identical to fitting that row alone.  Returns the raw per-row
    arrays ``(centers, labels, inertia, n_iter)`` so the caller can pick
    a winner without materializing a result object per row.
    """
    n_rows, width, _dim = centers.shape
    n = points.shape[0]
    if x_sq is None:
        x_sq = np.einsum("ij,ij->i", points, points)

    active = np.ones(n_rows, dtype=bool)
    prev_inertia = np.full(n_rows, np.inf)
    n_iter = np.zeros(n_rows, dtype=int)
    all_labels = np.zeros((n_rows, n), dtype=np.intp)
    last_shift = np.full(n_rows, np.inf)
    had_empty = np.zeros(n_rows, dtype=bool)
    row_inertia = np.zeros(n_rows)
    col_idx = np.arange(n)

    for it in range(1, max_iter + 1):
        act = np.nonzero(active)[0]
        if act.size == 0:
            break
        sub = centers[act]
        dists = _batch_sq_dists(points, sub, x_sq)  # (A, k, n)
        labels, mins = _assign(dists)  # both (A, n)
        inertia = mins.sum(axis=1)
        row_inertia[act] = inertia
        n_iter[act] = it

        # A row whose memberships did not change since last iteration is
        # done: recomputing centroids from identical labels reproduces
        # identical centers (shift exactly 0.0), so the whole update can
        # be skipped for it — and its labels are already final.  (A row
        # that reseeded an empty cluster last iteration is excluded: its
        # reseed point depends on distances, not only on labels.)
        if it > 1:
            settled = (~had_empty[act]
                       & (labels == all_labels[act]).all(axis=1))
        else:
            settled = np.zeros(act.size, dtype=bool)
        all_labels[act] = labels
        if it > 1 and settled.all():
            last_shift[act] = 0.0
            active[act] = False
            continue
        upd = np.nonzero(~settled)[0]  # indices into the active block
        n_upd = upd.size
        labels_u = labels[upd]
        sub_u = sub[upd]

        # One-hot membership + a batched matmul replaces the per-cluster
        # membership loop (and scales with the attribute count, unlike a
        # per-dimension bincount).
        onehot = np.zeros(n_upd * width * n)
        pos = (np.arange(n_upd) * (width * n))[:, None] + labels_u * n
        pos += col_idx[None, :]
        onehot[pos.ravel()] = 1.0
        onehot = onehot.reshape(n_upd, width, n)
        counts = np.bincount(
            (labels_u + (np.arange(n_upd) * width)[:, None]).ravel(),
            minlength=n_upd * width).reshape(n_upd, width)
        sums = onehot @ points
        new_sub = sums / np.maximum(counts, 1)[:, :, None]

        # Empty cluster: reseed at the point farthest from its center.
        empty_r, empty_c = np.nonzero(counts == 0)
        had_empty[act[upd]] = False
        if empty_r.size:
            farthest = mins[upd].argmax(axis=1)  # (U,)
            new_sub[empty_r, empty_c] = points[farthest[empty_r]]
            had_empty[act[upd[np.unique(empty_r)]]] = True

        diff = new_sub - sub_u
        shift = np.sqrt(np.einsum("rkd,rkd->r", diff, diff))
        centers[act[upd]] = new_sub
        last_shift[act[upd]] = shift
        last_shift[act[settled]] = 0.0
        converged = np.array(settled)
        converged[upd] = ((shift <= tol)
                          | (np.abs(prev_inertia[act[upd]] - inertia[upd]) <= tol))
        prev_inertia[act] = inertia
        active[act[converged]] = False

    # Final assignment.  A row whose last shift was exactly 0.0 had
    # stable memberships: recomputing centroids from the same labels
    # reproduced the same centers bit-for-bit, so the labels computed in
    # that iteration already ARE the assignment for the final centers.
    # Only rows that moved on their last iteration (or never iterated)
    # need one more distance pass.
    stale = np.nonzero((last_shift != 0.0) | (n_iter == 0))[0]
    if stale.size:
        dists = _batch_sq_dists(points, centers[stale], x_sq)
        labels_s, mins_s = _assign(dists)
        all_labels[stale] = labels_s
        row_inertia[stale] = mins_s.sum(axis=1)

    # Repair any empty cluster by reassigning to it the point farthest
    # from its current center (taken from a cluster with more than one
    # member), so callers can rely on non-empty clusters when n >= k.
    offsets = (np.arange(n_rows) * width)[:, None]
    all_sizes = np.bincount((all_labels + offsets).ravel(),
                            minlength=n_rows * width).reshape(n_rows, width)
    for r in np.nonzero((all_sizes == 0).any(axis=1))[0]:
        k = width
        labels = all_labels[r]
        dists = _pairwise_sq_dists(points, centers[r])  # (n, k)
        for j in range(k):
            sizes = np.bincount(labels, minlength=k)
            if sizes[j] > 0:
                continue
            movable = sizes[labels] > 1
            if not movable.any():
                break  # unreachable when n >= k, defensive otherwise
            point_dists = dists[col_idx, labels]
            donor = int(np.where(movable, point_dists, -np.inf).argmax())
            labels[donor] = j
            centers[r, j] = points[donor]
        # Repair moved labels/centers: recompute this row's inertia
        # exactly from the repaired assignment.
        deltas = points - centers[r][labels]
        row_inertia[r] = np.einsum("ij,ij->", deltas, deltas)

    # Inertia is the expansion-form distance mass accumulated on each
    # row's final assignment pass (clamped: round-off can dip a few ulp
    # below zero when clusters collapse onto their points).  Accurate to
    # ~1e-12 relative, same as scikit-learn's inertia.
    np.maximum(row_inertia, 0.0, out=row_inertia)
    return centers, all_labels, row_inertia, n_iter


def _lloyd_batch(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
) -> List[KMeansResult]:
    """Lloyd for a restart block, one :class:`KMeansResult` per row."""
    cents, labels, inertias, iters = _lloyd_batch_arrays(
        points, centers, max_iter=max_iter, tol=tol)
    width = centers.shape[1]
    return [
        KMeansResult(k=width, centroids=cents[r], labels=labels[r],
                     inertia=float(inertias[r]), n_iter=int(iters[r]))
        for r in range(centers.shape[0])
    ]


def _lloyd(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
) -> KMeansResult:
    """Single-restart Lloyd (a one-row batch; kept for tests/callers)."""
    return _lloyd_batch(points, np.array(centers, dtype=float)[None],
                        max_iter=max_iter, tol=tol)[0]


def _k1_result(points: np.ndarray) -> KMeansResult:
    """Closed-form k=1 fit (the global mean; no randomness involved)."""
    center = points.mean(axis=0, keepdims=True)
    inertia = float(((points - center) ** 2).sum())
    return KMeansResult(
        k=1,
        centroids=center,
        labels=np.zeros(points.shape[0], dtype=int),
        inertia=inertia,
        n_iter=1,
    )


def _validate(points: np.ndarray, k: int, n_init: int) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValidationError("points must be a 2-D array")
    if k < 1:
        raise ValidationError("k must be >= 1")
    if points.shape[0] < k:
        raise ClusteringError(f"{points.shape[0]} points cannot form {k} clusters")
    if n_init < 1:
        raise ValidationError("n_init must be >= 1")
    return points


def kmeans(
    points: np.ndarray,
    k: int,
    seed: Seed = 0,
    n_init: int = 8,
    max_iter: int = 200,
    tol: float = 1e-9,
) -> KMeansResult:
    """Fit k-means with ``n_init`` restarts, keeping the lowest inertia.

    Raises :class:`ClusteringError` if there are fewer points than
    clusters; duplicate points are fine.  ``seed`` may be an int, a
    ``numpy.random.Generator``, or a ``numpy.random.SeedSequence``.
    """
    points = _validate(points, k, n_init)
    if k == 1:
        return _k1_result(points)

    rng = np.random.default_rng(seed)
    x_sq = np.einsum("ij,ij->i", points, points)
    best: Optional[tuple] = None
    for size in _restart_blocks(points.shape[0], k, n_init):
        seeds = _kmeanspp_init_batch(points, k, size, rng, x_sq=x_sq)
        cents, labels, inertias, iters = _lloyd_batch_arrays(
            points, seeds, max_iter=max_iter, tol=tol, x_sq=x_sq)
        r = int(np.argmin(inertias))  # first minimum wins, like the loop
        if best is None or inertias[r] < best[0]:
            best = (float(inertias[r]), cents[r], labels[r], int(iters[r]))
    assert best is not None
    return KMeansResult(k=k, centroids=best[1], labels=best[2],
                        inertia=best[0], n_iter=best[3])
