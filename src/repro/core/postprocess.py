"""Phase post-processing: merging equivalent phases.

The paper (Section VI-A, VI-D) observes that distinct k-means clusters
can share instrumentation sites — Graph500's two ``run_bfs`` phases,
LAMMPS's two ``PairLJCut::compute`` phases — and suggests that "phase
discovery might need some postprocessing to combine phases which have
the same instrumentation sites."  This module implements that
post-processing.

Two phases merge when their selected site *functions* are equal (the
body/loop designation may differ between them — that is precisely the
Graph500 case, where the same function is instrumented two ways).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.core.model import Site
from repro.core.pipeline import AnalysisResult


@dataclass(frozen=True)
class MergedPhase:
    """A group of equivalent phases treated as one application phase."""

    merged_id: int
    phase_ids: Tuple[int, ...]
    functions: FrozenSet[str]
    sites: Tuple[Site, ...]
    interval_indices: Tuple[int, ...]
    app_pct: float

    @property
    def was_merged(self) -> bool:
        return len(self.phase_ids) > 1


@dataclass(frozen=True)
class MergedPhaseModel:
    """The phase model after site-equivalence merging."""

    merged: Tuple[MergedPhase, ...]
    n_original: int

    @property
    def n_phases(self) -> int:
        return len(self.merged)

    def merges_applied(self) -> int:
        """How many original phases were absorbed by merging."""
        return self.n_original - self.n_phases


def merge_equivalent_phases(result: AnalysisResult) -> MergedPhaseModel:
    """Group phases whose selected site-function sets are identical.

    Returns merged phases ordered by combined interval count descending
    (ties by lowest original phase id), with coverage re-expressed over
    the union of member intervals.
    """
    groups: Dict[FrozenSet[str], List[int]] = {}
    for phase_id, sites in enumerate(result.selection.per_phase):
        key = frozenset(s.function for s in sites)
        groups.setdefault(key, []).append(phase_id)

    total = max(1, result.interval_data.n_intervals)
    raw: List[Tuple[FrozenSet[str], List[int]]] = sorted(
        groups.items(),
        key=lambda item: (
            -sum(len(result.phase_model.phase(p).interval_indices) for p in item[1]),
            min(item[1]),
        ),
    )

    merged: List[MergedPhase] = []
    for merged_id, (functions, phase_ids) in enumerate(raw):
        intervals: List[int] = []
        sites: List[Site] = []
        for phase_id in sorted(phase_ids):
            intervals.extend(result.phase_model.phase(phase_id).interval_indices)
            for selected in result.selection.per_phase[phase_id]:
                if selected.site not in sites:
                    sites.append(selected.site)
        merged.append(
            MergedPhase(
                merged_id=merged_id,
                phase_ids=tuple(sorted(phase_ids)),
                functions=functions,
                sites=tuple(sites),
                interval_indices=tuple(sorted(intervals)),
                app_pct=100.0 * len(intervals) / total,
            )
        )
    return MergedPhaseModel(merged=tuple(merged), n_original=result.n_phases)
