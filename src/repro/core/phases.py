"""Interpreting clusters as phases."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.kselect import DEFAULT_ELBOW_THRESHOLD, DEFAULT_KMAX, KSelection, choose_k
from repro.core.model import Phase
from repro.util.errors import ValidationError


@dataclass(frozen=True)
class PhaseModel:
    """The detected phases of a run.

    Phase IDs are arbitrary cluster labels (as in the paper); we order
    them by interval count descending, ties by earliest interval, so runs
    are deterministic and the dominant behaviour is phase 0.
    """

    phases: Tuple[Phase, ...]
    labels: np.ndarray  # (n_intervals,) phase id per interval
    kselection: KSelection

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def n_intervals(self) -> int:
        return int(self.labels.shape[0])

    def phase(self, phase_id: int) -> Phase:
        return self.phases[phase_id]

    def phase_of_interval(self, interval: int) -> int:
        return int(self.labels[interval])

    def sizes(self) -> List[int]:
        return [len(p) for p in self.phases]

    def merged_by_site_equivalence(self, site_functions: Dict[int, frozenset]) -> List[List[int]]:
        """Group phase ids whose selected site-function sets are identical.

        The paper observes (Graph500, LAMMPS) that distinct clusters can
        share instrumentation sites and "should really be identified as a
        single phase"; this helper supports that post-processing.
        """
        groups: Dict[frozenset, List[int]] = {}
        for phase_id, functions in site_functions.items():
            groups.setdefault(functions, []).append(phase_id)
        return [sorted(ids) for ids in groups.values()]


def phases_from_labels(labels: np.ndarray, centroids: np.ndarray,
                       kselection: KSelection) -> PhaseModel:
    """Build a :class:`PhaseModel` from raw cluster labels and centroids."""
    labels = np.asarray(labels)
    cluster_ids = np.unique(labels)
    raw: List[Tuple[int, int, np.ndarray, np.ndarray]] = []
    for cid in cluster_ids:
        members = np.nonzero(labels == cid)[0]
        raw.append((len(members), int(members[0]), members, centroids[cid]))
    # Order: size descending, then first appearance ascending.
    raw.sort(key=lambda item: (-item[0], item[1]))

    phases: List[Phase] = []
    new_labels = np.empty_like(labels)
    for new_id, (_size, _first, members, centroid) in enumerate(raw):
        phases.append(
            Phase(phase_id=new_id, interval_indices=tuple(int(i) for i in members),
                  centroid=np.array(centroid))
        )
        new_labels[members] = new_id
    return PhaseModel(phases=tuple(phases), labels=new_labels, kselection=kselection)


def detect_phases(
    features: np.ndarray,
    kmax: int = DEFAULT_KMAX,
    method: str = "elbow",
    seed: Union[int, np.random.Generator] = 0,
    n_init: int = 8,
    threshold: float = DEFAULT_ELBOW_THRESHOLD,
    workers: Optional[int] = None,
) -> PhaseModel:
    """Cluster interval features and return the phase model.

    This is steps 2-3 of the paper's flow: k-means for k = 1..kmax, k
    chosen by ``method`` (elbow by default), each cluster a phase.

    ``workers`` > 1 runs the k sweep on a process pool; results are
    bit-identical to the serial sweep (per-k seeds are spawned from one
    ``SeedSequence``), so it is a throughput knob only and deliberately
    not part of any result-defining configuration.
    """
    features = np.asarray(features, dtype=float)
    if features.ndim != 2 or features.shape[0] == 0:
        raise ValidationError("features must be a non-empty 2-D array")
    selection = choose_k(features, kmax=kmax, method=method, seed=seed, n_init=n_init,
                         threshold=threshold, workers=workers)
    best = selection.best
    return phases_from_labels(best.labels, best.centroids, selection)
