"""Durable phase-model artifacts (``.ipm`` files).

The paper's workflow is train-once/monitor-forever: IncProf derives a
phase model offline and monitoring then runs indefinitely.  This module
makes the trained model a *durable artifact* instead of process state:
:func:`save_model` serializes an :class:`~repro.core.online.OnlinePhaseTracker`
(or the :class:`~repro.core.pipeline.AnalysisResult` it is trained from)
to a single self-describing file, and :func:`load_model` round-trips it
to bit-identical classification.

File format (magic ``IPMDL``)::

    magic(5) | schema(u16 LE) | sha256(payload)(32) | length(u32 LE) | payload

The payload is canonical JSON (sorted keys, no whitespace) holding the
function vocabulary, centroids, novelty gates, interval, and free-form
metadata (training app, analysis config, selected sites).  Floats use
Python's shortest-round-trip repr, so nothing is lost to formatting.
Writes are atomic (temp file + rename); anything malformed — wrong
magic, unsupported schema, checksum mismatch, truncation — raises
:class:`~repro.util.errors.ModelFormatError` with a message naming the
failure.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.online import OnlinePhaseTracker
from repro.core.pipeline import AnalysisResult
from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import ModelFormatError, ValidationError

MODEL_MAGIC = b"IPMDL"
MODEL_SCHEMA = 1

_MODEL_HEADER = struct.Struct("<5sH32sI")  # magic, schema, sha256, payload length


def _payload_from_tracker(tracker: OnlinePhaseTracker,
                          meta: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    payload = {"kind": "phase-model", "model": tracker.trained_state()}
    payload["meta"] = dict(meta) if meta else {}
    # Refit artifacts name the model version they froze, so a consumer
    # can tell generations apart without parsing the model body.  A
    # never-refit model omits the key to keep its bytes identical to
    # pre-streaming artifacts.
    if tracker.model_version > 0:
        payload["meta"].setdefault("model_version", tracker.model_version)
    return payload


def _coerce_tracker(
    obj: Union[OnlinePhaseTracker, AnalysisResult],
    quantile: float,
    slack: float,
    meta: Optional[Dict[str, Any]],
) -> tuple:
    """Accept a tracker or an analysis result; return (tracker, meta)."""
    if isinstance(obj, OnlinePhaseTracker):
        return obj, dict(meta or {})
    if isinstance(obj, AnalysisResult):
        tracker = OnlinePhaseTracker.from_analysis(obj, quantile=quantile,
                                                   slack=slack)
        enriched = {
            "n_phases": obj.n_phases,
            "n_intervals": obj.interval_data.n_intervals,
            "sites": [asdict(site) for site in obj.sites()],
            "analysis_config": {
                k: v for k, v in asdict(obj.config).items()
                if isinstance(v, (bool, int, float, str))
            },
            "quantile": quantile,
            "slack": slack,
        }
        enriched.update(meta or {})
        return tracker, enriched
    raise ValidationError(
        f"save_model needs an OnlinePhaseTracker or AnalysisResult, "
        f"got {type(obj).__name__}")


def pack_artifact(payload_obj: Dict[str, Any], magic: bytes,
                  schema: int) -> bytes:
    """Wrap a JSON-ready payload in the checksummed artifact envelope."""
    payload = json.dumps(payload_obj, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return _MODEL_HEADER.pack(magic, schema, digest, len(payload)) + payload


def dumps_model(
    obj: Union[OnlinePhaseTracker, AnalysisResult],
    *,
    quantile: float = 0.95,
    slack: float = 1.5,
    meta: Optional[Dict[str, Any]] = None,
) -> bytes:
    """Serialize a phase model to the versioned artifact bytes."""
    tracker, meta = _coerce_tracker(obj, quantile, slack, meta)
    return pack_artifact(_payload_from_tracker(tracker, meta),
                         MODEL_MAGIC, MODEL_SCHEMA)


def read_artifact_payload(blob: bytes, magic: bytes, schema: int, what: str,
                          exc_type: type = ModelFormatError) -> Dict[str, Any]:
    """Validate a ``header+payload`` artifact envelope; return the payload.

    Shared by model artifacts and daemon checkpoints (same envelope,
    different magic); failures raise ``exc_type`` with a message naming
    exactly what is wrong.
    """
    if len(blob) < _MODEL_HEADER.size:
        raise exc_type(f"truncated {what} artifact: "
                       f"{len(blob)} bytes is shorter than the header")
    got_magic, got_schema, digest, length = _MODEL_HEADER.unpack(
        blob[:_MODEL_HEADER.size])
    if got_magic != magic:
        raise exc_type(f"bad {what} magic {got_magic!r} (expected {magic!r})")
    if got_schema != schema:
        raise exc_type(f"unsupported {what} schema version {got_schema} "
                       f"(this build reads version {schema})")
    payload = blob[_MODEL_HEADER.size:]
    if len(payload) != length:
        raise exc_type(f"truncated {what} artifact: header says {length} "
                       f"payload bytes, file has {len(payload)}")
    if hashlib.sha256(payload).digest() != digest:
        raise exc_type(f"{what} checksum mismatch: the payload is corrupt")
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise exc_type(f"{what} payload is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise exc_type(f"{what} payload must be a JSON object")
    return obj


def loads_model(blob: bytes) -> OnlinePhaseTracker:
    """Deserialize artifact bytes back to a ready-to-serve tracker."""
    obj = read_artifact_payload(blob, MODEL_MAGIC, MODEL_SCHEMA, "model")
    if obj.get("kind") != "phase-model":
        raise ModelFormatError(f"artifact kind {obj.get('kind')!r} "
                               f"is not 'phase-model'")
    try:
        return OnlinePhaseTracker.from_trained_state(obj["model"])
    except (KeyError, ValidationError) as exc:
        raise ModelFormatError(f"model payload is incomplete: {exc}") from exc


def model_meta(source: Union[bytes, str, Path]) -> Dict[str, Any]:
    """The artifact's metadata dict (training provenance), without loading.

    Accepts either the artifact bytes or a path to the artifact file.
    """
    if isinstance(source, (str, Path)):
        try:
            blob = Path(source).read_bytes()
        except OSError as exc:
            raise ModelFormatError(f"cannot read model {source}: {exc}") from exc
    else:
        blob = source
    obj = read_artifact_payload(blob, MODEL_MAGIC, MODEL_SCHEMA, "model")
    meta = obj.get("meta", {})
    return meta if isinstance(meta, dict) else {}


def save_model(
    obj: Union[OnlinePhaseTracker, AnalysisResult],
    path: Union[str, Path],
    *,
    quantile: float = 0.95,
    slack: float = 1.5,
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Atomically write a phase-model artifact; return the final path.

    Accepts either a trained tracker or a raw analysis result (in which
    case the tracker is derived with ``quantile``/``slack`` and the
    artifact records the analysis provenance as metadata).
    """
    return atomic_write_bytes(path, dumps_model(obj, quantile=quantile,
                                                slack=slack, meta=meta))


def load_model(path: Union[str, Path]) -> OnlinePhaseTracker:
    """Load a phase-model artifact written by :func:`save_model`."""
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise ModelFormatError(f"cannot read model {path}: {exc}") from exc
    return loads_model(blob)
