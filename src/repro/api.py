"""The stable public surface of the IncProf reproduction.

Everything an application author needs lives here under one import:

    from repro import api

    session = api.Session(app, api.SessionConfig(ranks=1))
    analysis = api.analyze_snapshots(session.run().samples(rank=0))
    api.save_model(analysis, "app.ipmdl")

    tracker = api.load_model("app.ipmdl")          # later, elsewhere
    phases = tracker.classify_batch(new_samples)

Names exported from this module follow the deprecation policy in
``docs/API.md``: they are stable across minor versions, removals go
through a deprecation cycle, and anything *not* exported here (module
internals, helper functions reached by deep imports) may change without
notice.  Prefer ``repro.api`` over deep imports in application code.

The surface groups into five layers:

- **offline analysis** — :func:`analyze_snapshots` over a snapshot
  series; :class:`AnalysisConfig` / :class:`AnalysisResult`.
- **streaming analysis** — :class:`IncrementalAnalyzer` ingests the
  same cumulative snapshots one at a time, emitting live phase
  assignments and :class:`RefitEvent` model swaps; its ``finalize()``
  reproduces :func:`analyze_snapshots` exactly (see
  ``docs/STREAMING.md``).
- **collection** — :class:`Session` (simulated app runs) and
  :class:`SampleStore` (on-disk gmon sample directories; deprecated in
  favour of the unified storage interface below).
- **storage** — :class:`IntervalStore` (the unified append/scan/window/
  compact/gc/replay interface), its two backends :class:`LooseStore`
  (legacy loose gmon files) and :class:`SegmentStore` (tiered columnar
  segments with :class:`CompactionPolicy` retention), :func:`open_store`
  (backend auto-detection), and :class:`ReplayResult` (the time-travel
  replay outcome).  See ``docs/STORAGE.md``.
- **model artifacts** — :func:`save_model` / :func:`load_model`
  round-trip a trained phase model through one durable, checksummed
  file with bit-identical classification.
- **online monitoring** — :class:`OnlinePhaseTracker` in-process;
  :class:`PhaseClient` + :class:`RetryPolicy` against an ``incprofd``
  daemon (see ``docs/SERVICE.md``).
- **fleet analytics** — :class:`PhaseSignature` per-stream behaviour
  summaries, :func:`analyze_signatures` cohort/anomaly/drift reports,
  and :func:`analyze_fleet_dir` over a fleet run's per-worker archives
  (see ``docs/ANALYTICS.md``).
- **errors** — the :class:`ReproError` hierarchy; every exception this
  package raises deliberately derives from it.
"""

from __future__ import annotations

# -- offline analysis --------------------------------------------------
from repro.core import (
    AnalysisConfig,
    AnalysisResult,
    analyze_snapshots,
)

# -- streaming analysis ------------------------------------------------
from repro.core.incremental import (
    AdaptiveConfig,
    DriftConfig,
    IncrementalAnalyzer,
    IncrementalUpdate,
    RefitEvent,
)

# -- model artifacts ---------------------------------------------------
from repro.core.model_io import (
    MODEL_SCHEMA,
    dumps_model,
    load_model,
    loads_model,
    model_meta,
    save_model,
)

# -- online monitoring -------------------------------------------------
from repro.core.online import NOVEL, OnlinePhaseTracker, TrackedInterval

# -- collection --------------------------------------------------------
from repro.gprof.gmon import GmonData, read_gmon, write_gmon
from repro.incprof import SampleStore, Session, SessionConfig, SessionResult

# -- storage -----------------------------------------------------------
from repro.store.interface import IntervalStore, ReplayResult
from repro.store.loose import LooseStore
from repro.store.segments import CompactionPolicy, SegmentStore, open_store

# -- fleet analytics ---------------------------------------------------
from repro.core.cohorts import CohortMatcher, signature_distance
from repro.fleet.analytics import (
    PhaseSignature,
    analyze_fleet_dir,
    analyze_signatures,
)

# -- service client ----------------------------------------------------
from repro.service import (
    Endpoint,
    PhaseClient,
    PublishReport,
    RetryPolicy,
    publish_samples,
    publish_session,
)

# -- errors ------------------------------------------------------------
from repro.util.errors import (
    BackpressureError,
    CheckpointError,
    ClusteringError,
    CollectorError,
    ConnectionLostError,
    FormatError,
    ModelFormatError,
    ProfileDataError,
    ProtocolError,
    ReproError,
    RequestError,
    RetryExhaustedError,
    SampleFileError,
    SegmentManifestError,
    ServiceError,
    StreamConflictError,
    UnknownStreamError,
    ValidationError,
)

__all__ = [
    # offline analysis
    "AnalysisConfig",
    "AnalysisResult",
    "analyze_snapshots",
    # streaming analysis
    "AdaptiveConfig",
    "DriftConfig",
    "IncrementalAnalyzer",
    "IncrementalUpdate",
    "RefitEvent",
    # collection
    "GmonData",
    "read_gmon",
    "write_gmon",
    "SampleStore",
    "Session",
    "SessionConfig",
    "SessionResult",
    # storage
    "IntervalStore",
    "LooseStore",
    "SegmentStore",
    "CompactionPolicy",
    "ReplayResult",
    "open_store",
    # model artifacts
    "MODEL_SCHEMA",
    "save_model",
    "load_model",
    "dumps_model",
    "loads_model",
    "model_meta",
    # fleet analytics
    "CohortMatcher",
    "PhaseSignature",
    "analyze_fleet_dir",
    "analyze_signatures",
    "signature_distance",
    # online monitoring
    "NOVEL",
    "OnlinePhaseTracker",
    "TrackedInterval",
    "Endpoint",
    "PhaseClient",
    "PublishReport",
    "RetryPolicy",
    "publish_samples",
    "publish_session",
    # errors
    "ReproError",
    "ValidationError",
    "FormatError",
    "ProfileDataError",
    "ClusteringError",
    "CollectorError",
    "ProtocolError",
    "SampleFileError",
    "ModelFormatError",
    "CheckpointError",
    "SegmentManifestError",
    "ServiceError",
    "RequestError",
    "UnknownStreamError",
    "StreamConflictError",
    "BackpressureError",
    "ConnectionLostError",
    "RetryExhaustedError",
]
