"""On-disk layout: the single source of truth for file naming.

Every durable artifact the package writes — loose gmon samples, segment
files and their manifest, phase-model artifacts (``.ipm``), daemon
checkpoints (``.ipckp``), atomic-write temp files — gets its name from
this module.  Before it existed the same patterns were re-derived in
``incprof.storage``, ``service.checkpoint``, ``service.server``, and
``util.atomicio``; a rename in one place silently orphaned files written
by another.  Now parsers and formatters live side by side, so a layout
change is one edit and the garbage collector can enumerate *exactly*
the files the writers produce.

Nothing here touches the filesystem except :func:`gc_versioned`, the
shared retention sweep for versioned artifacts.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.util.errors import ValidationError

# ----------------------------------------------------------------------
# atomic-write temp files
# ----------------------------------------------------------------------
#: Suffix every atomic-write temp file carries; readers and GC sweeps
#: skip (and may reap) anything ending in it.
TMP_SUFFIX = ".tmp"


def tmp_path_for(path: Union[str, Path]) -> Path:
    """The same-directory temp name an atomic write of ``path`` uses.

    Carries the pid so concurrent writers in different processes never
    collide; the leading dot keeps directory listings and glob-based
    loaders from ever matching a half-written file.
    """
    path = Path(path)
    return path.with_name(f".{path.name}.{os.getpid()}{TMP_SUFFIX}")


def is_tmp_name(name: str) -> bool:
    """True for atomic-write temp files (crash leftovers included)."""
    return name.startswith(".") and name.endswith(TMP_SUFFIX)


# ----------------------------------------------------------------------
# loose per-interval sample files (the legacy SampleStore layout)
# ----------------------------------------------------------------------
LOOSE_SAMPLE_RE = re.compile(
    r"^gmon-r(?P<rank>\d{3})-i(?P<index>\d{5})\.gmon$")


def loose_sample_name(rank: int, index: int) -> str:
    """``gmon-r<rank:03d>-i<index:05d>.gmon``."""
    if rank < 0 or index < 0:
        raise ValidationError("rank and index must be non-negative")
    return f"gmon-r{rank:03d}-i{index:05d}.gmon"


def parse_loose_sample(name: str) -> Optional[Tuple[int, int]]:
    """``(rank, interval_index)`` for a loose sample file, else None."""
    m = LOOSE_SAMPLE_RE.match(name)
    if not m:
        return None
    return int(m.group("rank")), int(m.group("index"))


# ----------------------------------------------------------------------
# segment store
# ----------------------------------------------------------------------
#: Manifest file at a segment-store root (checksummed artifact envelope).
MANIFEST_NAME = "MANIFEST.isegm"
#: Subdirectory holding segment files.
SEGMENTS_DIRNAME = "segments"
#: Subdirectory a segment store reserves for versioned model/checkpoint
#: artifacts it garbage-collects.
ARTIFACTS_DIRNAME = "artifacts"

SEGMENT_RE = re.compile(
    r"^seg-(?P<serial>\d{8})-t(?P<tier>\d)\.npz$")

_STREAM_SAFE_RE = re.compile(r"[^A-Za-z0-9._-]")


def sanitize_stream(stream_id: str) -> str:
    """A path-safe directory name for an arbitrary stream id.

    Stream ids come off the wire, so anything goes; unsafe characters
    are percent-escaped (stable, reversible enough for humans) and the
    empty id is rejected outright.

    Escaping is per UTF-8 *byte*, always two hex digits (``"€"`` →
    ``"%e2%82%ac"``), so the mapping is injective: a codepoint above
    0xFF can never render the same as some other id's escape sequence.
    (The old per-codepoint ``%XXXX`` form collided — ``"€x"`` and
    ``" acx"`` both produced ``"%20acx"`` and shared one archive
    directory.)  ASCII ids render exactly as before, so existing
    on-disk layouts still parse.
    """
    if not stream_id:
        raise ValidationError("stream id must be non-empty")
    safe = _STREAM_SAFE_RE.sub(
        lambda m: "".join(f"%{b:02x}" for b in m.group(0).encode("utf-8")),
        stream_id)
    if safe in (".", ".."):
        raise ValidationError(f"stream id {stream_id!r} is not path-safe")
    return safe


def segment_name(serial: int, tier: int) -> str:
    """``seg-<serial:08d>-t<tier>.npz`` — serial is store-wide unique."""
    if serial < 0 or not 0 <= tier <= 9:
        raise ValidationError("bad segment serial/tier")
    return f"seg-{serial:08d}-t{tier}.npz"


def parse_segment(name: str) -> Optional[Tuple[int, int]]:
    """``(serial, tier)`` for a segment file name, else None."""
    m = SEGMENT_RE.match(name)
    if not m:
        return None
    return int(m.group("serial")), int(m.group("tier"))


# ----------------------------------------------------------------------
# daemon checkpoints and model artifacts
# ----------------------------------------------------------------------
#: The daemon's stable (latest) checkpoint file.
CHECKPOINT_FILENAME = "incprofd.ckpt"
#: Fleet topology manifest at a fleet root.
FLEET_MANIFEST_FILENAME = "fleet-manifest.json"
#: Versioned artifact suffixes the garbage collector understands.
MODEL_SUFFIX = ".ipm"
CHECKPOINT_SUFFIX = ".ipckp"

#: ``model-<stream>-v<version>.ipm`` — live-refit model artifacts.
VERSIONED_MODEL_RE = re.compile(
    r"^model-(?P<stream>.+)-v(?P<version>\d+)\.ipm$")
#: ``incprofd-<serial>.ipckp`` — rotated checkpoint history.
VERSIONED_CHECKPOINT_RE = re.compile(
    r"^incprofd-(?P<version>\d{8})\.ipckp$")


#: Per-worker interval-archive directory name (under the worker's
#: durable-state directory at a fleet root).
WORKER_STORE_DIRNAME = "store"


def worker_dirname(worker_id: str) -> str:
    """Per-worker durable-state directory name under a fleet root."""
    if not worker_id:
        raise ValidationError("worker id must be non-empty")
    if "/" in worker_id or worker_id in (".", ".."):
        raise ValidationError(f"worker id {worker_id!r} is not path-safe")
    return f"worker-{worker_id}"


def versioned_model_name(stream_id: str, version: int) -> str:
    return f"model-{sanitize_stream(stream_id)}-v{version}{MODEL_SUFFIX}"


def versioned_checkpoint_name(serial: int) -> str:
    return f"incprofd-{serial:08d}{CHECKPOINT_SUFFIX}"


def _versioned_key(name: str) -> Optional[Tuple[str, int]]:
    """``(family, version)`` for a versioned artifact name, else None.

    The family is what retention groups by: model artifacts rotate per
    stream, checkpoint history rotates as one series.
    """
    m = VERSIONED_MODEL_RE.match(name)
    if m:
        return f"model:{m.group('stream')}", int(m.group("version"))
    m = VERSIONED_CHECKPOINT_RE.match(name)
    if m:
        return "checkpoint", int(m.group("version"))
    return None


def gc_versioned(directory: Union[str, Path], keep: int = 2) -> List[Path]:
    """Prune versioned ``.ipm``/``.ipckp`` artifacts, newest ``keep`` per
    family survive.  Returns the paths deleted (missing directories and
    races with concurrent deleters are silently fine — GC is advisory).

    Atomic-write temp leftovers from crashed writers are reaped too:
    they are never the latest complete version of anything.
    """
    if keep < 1:
        raise ValidationError("gc must keep at least one version")
    directory = Path(directory)
    try:
        names = [p.name for p in directory.iterdir()]
    except OSError:
        return []
    families: Dict[str, List[Tuple[int, str]]] = {}
    deleted: List[Path] = []
    for name in names:
        if is_tmp_name(name):
            deleted.append(directory / name)
            continue
        key = _versioned_key(name)
        if key is not None:
            families.setdefault(key[0], []).append((key[1], name))
    for versions in families.values():
        versions.sort()
        for _version, name in versions[:-keep]:
            deleted.append(directory / name)
    survivors: List[Path] = []
    for path in deleted:
        try:
            path.unlink()
            survivors.append(path)
        except OSError:
            pass
    return survivors
