"""Unified interval storage: one interface, two backends, tiered retention.

The public surface re-exported here (and through :mod:`repro.api`):

- :class:`IntervalStore` / :class:`ReplayResult` — the abstract
  append/scan/window/compact/gc/replay interface (``interface.py``);
- :class:`LooseStore` — the legacy one-gmon-file-per-interval layout;
- :class:`SegmentStore` / :class:`CompactionPolicy` / :func:`open_store`
  — the append-only columnar segment store with retention tiers;
- :mod:`repro.store.layout` — the single source of truth for on-disk
  naming (file patterns, tmp suffixes, versioned-artifact GC).

Attributes resolve lazily (PEP 562): ``repro.util`` imports ``atomicio``
eagerly and ``atomicio`` consults :mod:`repro.store.layout` for temp-file
naming, so this package must be importable without pulling in the
backend modules (which themselves import ``repro.util.atomicio``).
"""

from __future__ import annotations

from repro.store import layout  # noqa: F401  (leaf module: safe to eager-load)

_LAZY = {
    "IntervalStore": "repro.store.interface",
    "ReplayResult": "repro.store.interface",
    "LooseStore": "repro.store.loose",
    "CompactionPolicy": "repro.store.segments",
    "SegmentMeta": "repro.store.segments",
    "SegmentStore": "repro.store.segments",
    "TIER_RAW": "repro.store.segments",
    "TIER_SKETCH": "repro.store.segments",
    "TIER_VECTOR": "repro.store.segments",
    "open_store": "repro.store.segments",
}

__all__ = ["layout", *sorted(_LAZY)]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
