"""The unified storage interface: one way to persist and read intervals.

Persistence grew three ad-hoc shapes — ``SampleStore.save/load_rank/
load_rank_since/load_all`` for loose sample files, checkpoint files, and
model artifacts.  :class:`IntervalStore` collapses the interval-data
side into one abstract surface both backends implement:

- :class:`~repro.store.loose.LooseStore` — the legacy one-file-per-
  interval gmon layout (readable by every old tool, O(files) metadata);
- :class:`~repro.store.segments.SegmentStore` — append-only columnar
  segments with retention tiers and compaction (the fleet-scale layout).

Everything is keyed by *stream id* (a string; the loose layout uses the
decimal rank).  ``scan`` is the one read primitive — every legacy load
method is a thin wrapper over it — and :meth:`IntervalStore.replay` is
the time-travel API: re-drive any recorded window through a fresh
:class:`~repro.core.incremental.IncrementalAnalyzer` at memory speed,
for refit-policy backtesting against recorded traffic (see
``docs/STORAGE.md``).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.incremental import (
    DriftConfig,
    IncrementalAnalyzer,
    IncrementalUpdate,
    RefitEvent,
)
from repro.core.pipeline import AnalysisConfig
from repro.gprof.gmon import GmonData
from repro.util.errors import CollectorError


@dataclass
class ReplayResult:
    """One historical window re-driven through the streaming engine.

    ``updates`` are exactly what a live engine observing the same
    snapshots would have produced — same phase ids, same refit events —
    so backtests of refit policies read like production traces.  The
    engine itself rides along for callers that want to :meth:`finalize`
    or keep streaming past the window.
    """

    stream_id: str
    t0: Optional[float]
    t1: Optional[float]
    engine: IncrementalAnalyzer
    updates: List[IncrementalUpdate] = field(default_factory=list)
    #: Interval indices of the replayed snapshots, aligned with updates.
    indices: List[int] = field(default_factory=list)
    #: Wall seconds the replay took (the memory-speed claim, measured).
    elapsed: float = 0.0

    @property
    def n_intervals(self) -> int:
        return len(self.updates)

    @property
    def refits(self) -> List[RefitEvent]:
        return self.engine.refits

    def phase_timeline(self) -> List[Optional[int]]:
        """Live phase id per replayed interval (None during warmup)."""
        return [u.phase_id for u in self.updates]

    @property
    def intervals_per_second(self) -> float:
        return self.n_intervals / self.elapsed if self.elapsed > 0 else 0.0


class IntervalStore(ABC):
    """Abstract interval persistence: append / scan / window / replay.

    Implementations must keep ``scan`` ordered by interval index and
    cheap to resume (``since`` is the ``--follow`` watermark).  They may
    buffer appends; ``flush`` makes everything buffered durable.
    ``compact`` and ``gc`` are no-ops for backends without tiers.
    """

    # -- writing -------------------------------------------------------
    @abstractmethod
    def append(self, stream_id: str, index: int, snapshot: GmonData) -> None:
        """Persist one cumulative snapshot under ``(stream, index)``."""

    def flush(self) -> None:
        """Make buffered appends durable (no-op for unbuffered backends)."""

    def close(self) -> None:
        self.flush()

    # -- reading -------------------------------------------------------
    @abstractmethod
    def streams(self) -> List[str]:
        """Stream ids with at least one recorded interval, sorted."""

    @abstractmethod
    def scan(self, stream_id: str,
             since: int = -1) -> Iterator[Tuple[int, GmonData]]:
        """Yield ``(index, snapshot)`` with index > ``since``, in order.

        The single read primitive: full loads are ``scan(s)``, watermark
        tails are ``scan(s, watermark)``.  Lazy — implementations yield
        one interval at a time, so peak memory is O(1 segment), not
        O(stream).
        """

    def window(self, stream_id: str, t0: Optional[float] = None,
               t1: Optional[float] = None) -> Iterator[Tuple[int, GmonData]]:
        """``scan`` restricted to snapshot timestamps in ``[t0, t1)``.

        Timestamps are monotone per stream, so implementations may seek;
        this default filters the full scan.
        """
        for index, snapshot in self.scan(stream_id):
            if t0 is not None and snapshot.timestamp < t0:
                continue
            if t1 is not None and snapshot.timestamp >= t1:
                break
            yield index, snapshot

    # -- maintenance ---------------------------------------------------
    def compact(self, stream_id: Optional[str] = None) -> Dict[str, int]:
        """Run retention compaction; returns a report (no-op default)."""
        return {"segments_compacted": 0, "bytes_before": 0, "bytes_after": 0}

    def gc(self, keep_versions: int = 2) -> List[str]:
        """Prune versioned artifacts; returns deleted names (default none)."""
        return []

    # -- time travel ---------------------------------------------------
    def replay(
        self,
        stream_id: str,
        t0: Optional[float] = None,
        t1: Optional[float] = None,
        *,
        config: Optional[AnalysisConfig] = None,
        warmup: int = 12,
        drift: Optional[DriftConfig] = None,
        refit_cooldown: int = 16,
        track: bool = True,
        engine: Optional[IncrementalAnalyzer] = None,
    ) -> ReplayResult:
        """Re-drive a recorded window through the streaming engine.

        Feeds every snapshot of ``stream_id`` with timestamp in
        ``[t0, t1)`` (the whole stream by default) through a fresh
        :class:`IncrementalAnalyzer` — the same code path live traffic
        takes, minus the network — and returns the per-interval updates
        plus the engine for finalization.  Pass ``drift``/``warmup``/
        ``refit_cooldown`` to backtest refit policies against the
        recorded traffic; pass a pre-built ``engine`` to sweep
        configurations the keyword surface does not cover.

        Raises :class:`~repro.util.errors.CollectorError` when the
        window holds no intervals (wrong stream id, or the window fell
        entirely inside a sketch-tier region that no longer has
        replayable vectors).
        """
        if engine is None:
            engine = IncrementalAnalyzer(
                config or AnalysisConfig(), track=track, warmup=warmup,
                drift=drift, refit_cooldown=refit_cooldown)
        result = ReplayResult(stream_id=stream_id, t0=t0, t1=t1, engine=engine)
        start = time.perf_counter()
        for index, snapshot in self.window(stream_id, t0, t1):
            result.updates.append(engine.observe(snapshot))
            result.indices.append(index)
        result.elapsed = time.perf_counter() - start
        if not result.updates:
            raise CollectorError(
                f"no replayable intervals for stream {stream_id!r}"
                + (f" in window [{t0}, {t1})" if t0 is not None
                   or t1 is not None else ""))
        return result

    # -- context management --------------------------------------------
    def __enter__(self) -> "IntervalStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
