"""The tiered, compacting segment store.

Millions of streams dumping one snapshot per second cannot live as
loose per-interval files: metadata alone (one inode, one rename, one
directory entry per interval) dwarfs the data.  A :class:`SegmentStore`
instead buffers appends per stream and writes *segments* — one ``.npz``
file covering hundreds of intervals — under a checksummed manifest
that is rewritten atomically (temp file + rename) on every mutation, so
a crash at any instant leaves either the old or the new segment set,
never a torn one.

Retention is tiered; compaction migrates cold segments downward:

- **tier 0 (raw)** — the exact gmon bytes, concatenated with an offset
  table.  Replay is bit-identical to live ingest; most expensive.
- **tier 1 (vectors)** — the downsampled columnar form: the function
  vocabulary once, cumulative tick counts as one integer matrix,
  timestamps and periods as flat arrays.  Call arcs are dropped — phase
  classification never reads them — so replay through the streaming
  engine still produces a bit-identical phase timeline at a fraction of
  the bytes.
- **tier 2 (sketch)** — per-window centroid sketches (k-means centroids
  + occupancy over the window's interval vectors).  Not replayable;
  keeps the shape of ancient behaviour for fleet analytics.

The store also owns an ``artifacts/`` directory whose versioned
``.ipm`` / ``.ipckp`` artifacts are garbage-collected by :meth:`gc`
(newest K per family survive — see :func:`repro.store.layout.gc_versioned`).
"""

from __future__ import annotations

import hashlib
import io
import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from repro.core.model_io import pack_artifact, read_artifact_payload
from repro.gprof.gmon import GmonData, dumps_gmon, loads_gmon
from repro.store import layout
from repro.store.interface import IntervalStore
from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import (
    CollectorError,
    SampleFileError,
    SegmentManifestError,
    ValidationError,
)

MANIFEST_MAGIC = b"ISEGM"
MANIFEST_SCHEMA = 1

#: Retention tiers, coldest last.
TIER_RAW, TIER_VECTOR, TIER_SKETCH = 0, 1, 2


@dataclass
class SegmentMeta:
    """One segment as the manifest records it."""

    name: str
    tier: int
    first: int
    last: int
    t0: float
    t1: float
    count: int
    bytes: int
    sha256: str

    def to_obj(self) -> Dict[str, Any]:
        return {"name": self.name, "tier": self.tier, "first": self.first,
                "last": self.last, "t0": self.t0, "t1": self.t1,
                "count": self.count, "bytes": self.bytes,
                "sha256": self.sha256}

    @classmethod
    def from_obj(cls, obj: Dict[str, Any]) -> "SegmentMeta":
        try:
            return cls(name=str(obj["name"]), tier=int(obj["tier"]),
                       first=int(obj["first"]), last=int(obj["last"]),
                       t0=float(obj["t0"]), t1=float(obj["t1"]),
                       count=int(obj["count"]), bytes=int(obj["bytes"]),
                       sha256=str(obj["sha256"]))
        except (KeyError, TypeError, ValueError) as exc:
            raise SegmentManifestError(
                f"bad segment record in manifest: {exc!r}") from exc


@dataclass(frozen=True)
class CompactionPolicy:
    """When does a segment migrate to a colder tier?

    Measured in intervals behind the stream's newest recorded index:
    raw segments whose last interval is more than ``raw_keep`` behind
    become vector segments; vector segments more than ``vector_keep``
    behind become sketches.  ``sketch_k`` caps the centroids per sketch.
    """

    raw_keep: int = 1024
    vector_keep: int = 65536
    sketch_k: int = 4

    def __post_init__(self) -> None:
        if self.raw_keep < 0 or self.vector_keep < 0:
            raise ValidationError("retention horizons must be non-negative")
        if self.vector_keep < self.raw_keep:
            raise ValidationError("vector_keep must be >= raw_keep")
        if self.sketch_k < 1:
            raise ValidationError("sketch_k must be positive")


@dataclass
class _Pending:
    """One stream's buffered (not yet segment-written) appends."""

    indices: List[int] = field(default_factory=list)
    timestamps: List[float] = field(default_factory=list)
    blobs: List[bytes] = field(default_factory=list)


class SegmentStore(IntervalStore):
    """Append-only columnar segment store with tiered retention.

    Thread-safe: one lock covers the pending buffers and the manifest
    (appends buffer in memory and are O(1); segment writes happen at
    flush granularity).  Appends must arrive in increasing interval
    order per stream — the service's sequence numbering guarantees it,
    and the manifest's seekable index ranges depend on it.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        segment_intervals: int = 256,
        policy: CompactionPolicy = CompactionPolicy(),
        create: bool = True,
    ) -> None:
        if segment_intervals < 1:
            raise ValidationError("segment_intervals must be positive")
        self.root = Path(root)
        self.segment_intervals = segment_intervals
        self.policy = policy
        self._lock = threading.RLock()
        self._pending: Dict[str, _Pending] = {}
        self.appends = 0
        self.segment_writes = 0
        if create:
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise CollectorError(f"segment store {self.root} does not exist")
        self.segments_dir = self.root / layout.SEGMENTS_DIRNAME
        self.artifacts_dir = self.root / layout.ARTIFACTS_DIRNAME
        self.segments_dir.mkdir(parents=True, exist_ok=True)
        self.artifacts_dir.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / layout.MANIFEST_NAME
        self._next_serial = 0
        self._streams: Dict[str, List[SegmentMeta]] = {}
        self._load_manifest()
        self._reap_orphans()
        self._compactor: Optional[threading.Thread] = None
        self._compactor_stop = threading.Event()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _load_manifest(self) -> None:
        try:
            blob = self.manifest_path.read_bytes()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise SegmentManifestError(
                f"cannot read manifest {self.manifest_path}: {exc}") from exc
        payload = read_artifact_payload(blob, MANIFEST_MAGIC, MANIFEST_SCHEMA,
                                        "segment manifest",
                                        exc_type=SegmentManifestError)
        if payload.get("kind") != "incprof-segment-manifest":
            raise SegmentManifestError(
                f"{self.manifest_path} is not a segment manifest")
        self._next_serial = int(payload.get("next_serial", 0))
        self._streams = {
            str(sid): [SegmentMeta.from_obj(o) for o in segs]
            for sid, segs in payload.get("streams", {}).items()
        }

    def _write_manifest(self) -> None:
        payload = {
            "kind": "incprof-segment-manifest",
            "next_serial": self._next_serial,
            "streams": {sid: [s.to_obj() for s in segs]
                        for sid, segs in self._streams.items() if segs},
        }
        atomic_write_bytes(self.manifest_path,
                           pack_artifact(payload, MANIFEST_MAGIC,
                                         MANIFEST_SCHEMA))

    def _reap_orphans(self) -> None:
        """Delete segment files the manifest does not reference.

        A crash between writing a new segment and committing the
        manifest (or between committing and unlinking the old file)
        leaves exactly one orphan; reaping on open restores the
        invariant that the manifest *is* the store.
        """
        referenced = {seg.name for segs in self._streams.values()
                      for seg in segs}
        for stream_dir in self.segments_dir.iterdir():
            if not stream_dir.is_dir():
                continue
            for path in stream_dir.iterdir():
                name = f"{stream_dir.name}/{path.name}"
                if layout.is_tmp_name(path.name):
                    path.unlink(missing_ok=True)
                elif (layout.parse_segment(path.name) is not None
                        and name not in referenced):
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # segment files
    # ------------------------------------------------------------------
    def _segment_path(self, name: str) -> Path:
        return self.segments_dir / name

    def _write_segment(self, stream_id: str, tier: int,
                       arrays: Dict[str, np.ndarray],
                       first: int, last: int, t0: float, t1: float,
                       count: int) -> SegmentMeta:
        """Serialize one segment to disk; return its manifest record.

        The caller commits the record into the manifest; until that
        commit the file is an orphan a crash recovery would reap.
        """
        serial = self._next_serial
        self._next_serial += 1
        name = (f"{layout.sanitize_stream(stream_id)}/"
                f"{layout.segment_name(serial, tier)}")
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        blob = buf.getvalue()
        path = self._segment_path(name)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, blob)
        self.segment_writes += 1
        return SegmentMeta(name=name, tier=tier, first=first, last=last,
                           t0=t0, t1=t1, count=count, bytes=len(blob),
                           sha256=hashlib.sha256(blob).hexdigest())

    def _read_segment(self, seg: SegmentMeta) -> Dict[str, np.ndarray]:
        path = self._segment_path(seg.name)
        try:
            blob = path.read_bytes()
        except OSError as exc:
            raise SampleFileError(path, exc) from exc
        if hashlib.sha256(blob).hexdigest() != seg.sha256:
            raise SampleFileError(
                path, SegmentManifestError("segment checksum mismatch"))
        try:
            with np.load(io.BytesIO(blob), allow_pickle=False) as npz:
                return {key: npz[key] for key in npz.files}
        except (OSError, ValueError) as exc:
            raise SampleFileError(path, exc) from exc

    # ------------------------------------------------------------------
    # snapshot <-> array codecs per tier
    # ------------------------------------------------------------------
    @staticmethod
    def _raw_arrays(pending: _Pending) -> Dict[str, np.ndarray]:
        sizes = [len(b) for b in pending.blobs]
        offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
        np.cumsum(sizes, out=offsets[1:])
        return {
            "kind": np.array("raw"),
            "indices": np.asarray(pending.indices, dtype=np.int64),
            "timestamps": np.asarray(pending.timestamps, dtype=np.float64),
            "offsets": offsets,
            "blob": np.frombuffer(b"".join(pending.blobs), dtype=np.uint8),
        }

    @staticmethod
    def _iter_raw(arrays: Dict[str, np.ndarray]) -> Iterator[Tuple[int, GmonData]]:
        blob = arrays["blob"].tobytes()
        offsets = arrays["offsets"]
        for i, index in enumerate(arrays["indices"].tolist()):
            yield index, loads_gmon(blob[offsets[i]:offsets[i + 1]])

    @staticmethod
    def _vector_arrays(indices: List[int], snapshots: List[GmonData]) -> Dict[str, np.ndarray]:
        """The downsampled columnar form of a snapshot run.

        The function vocabulary is built in first-seen order *while
        iterating the snapshots* — the exact order the streaming engine
        assigns feature columns — so a replay from this tier grows an
        identical vocabulary and produces bit-identical features.  Call
        arcs are dropped: phase classification derives features from
        histogram ticks only.
        """
        cols: Dict[str, int] = {}
        funcs: List[str] = []
        for snap in snapshots:
            for func in snap.hist:
                if func not in cols:
                    cols[func] = len(funcs)
                    funcs.append(func)
        ticks = np.zeros((len(snapshots), len(funcs)), dtype=np.int64)
        for i, snap in enumerate(snapshots):
            for func, count in snap.hist.items():
                ticks[i, cols[func]] = count
        # Row-delta encoding: cumulative tick counts barely move between
        # adjacent intervals, so deltas are near-zero and zlib eats them.
        # Exact int64 arithmetic either way — cumsum on read restores the
        # matrix bit-for-bit.
        deltas = np.diff(ticks, axis=0,
                         prepend=np.zeros((1, ticks.shape[1]), dtype=np.int64))
        return {
            "kind": np.array("vector"),
            "indices": np.asarray(indices, dtype=np.int64),
            "timestamps": np.asarray([s.timestamp for s in snapshots],
                                     dtype=np.float64),
            "periods": np.asarray([s.sample_period for s in snapshots],
                                  dtype=np.float64),
            "ranks": np.asarray([s.rank for s in snapshots], dtype=np.int64),
            "funcs": np.asarray(funcs),
            "ticks_delta": deltas,
        }

    @staticmethod
    def _vector_ticks(arrays: Dict[str, np.ndarray]) -> np.ndarray:
        """Cumulative tick matrix restored from the row-delta encoding."""
        return np.cumsum(arrays["ticks_delta"], axis=0, dtype=np.int64)

    @classmethod
    def _iter_vector(cls, arrays: Dict[str, np.ndarray]) -> Iterator[Tuple[int, GmonData]]:
        funcs = [str(f) for f in arrays["funcs"].tolist()]
        ticks = cls._vector_ticks(arrays)
        timestamps = arrays["timestamps"].tolist()
        periods = arrays["periods"].tolist()
        ranks = arrays["ranks"].tolist()
        for i, index in enumerate(arrays["indices"].tolist()):
            row = ticks[i]
            nz = np.nonzero(row)[0]
            snap = GmonData(sample_period=periods[i],
                            timestamp=timestamps[i], rank=int(ranks[i]))
            snap.hist = {funcs[j]: int(row[j]) for j in nz.tolist()}
            yield index, snap

    def _sketch_arrays(self, vec: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        """Centroid sketch of one vector segment's interval deltas.

        Differencing is within-segment (the first row of a mid-stream
        segment has no predecessor here, so its delta is skipped unless
        the segment starts the stream); the sketch is a lossy summary by
        design.
        """
        from repro.core.kmeans import kmeans

        ticks = self._vector_ticks(vec).astype(np.float64)
        periods = vec["periods"][:, None]
        if int(vec["indices"][0]) == 0:
            base = np.zeros((1, ticks.shape[1]))
        else:
            base = ticks[:1]
        deltas = np.clip(np.diff(ticks, axis=0, prepend=base), 0, None) * periods
        if int(vec["indices"][0]) != 0:
            deltas = deltas[1:]
        if deltas.shape[0] == 0:
            deltas = np.zeros((1, ticks.shape[1]))
        k = min(self.policy.sketch_k, deltas.shape[0])
        fit = kmeans(deltas, k, seed=0)
        counts = np.bincount(fit.labels, minlength=k).astype(np.int64)
        return {
            "kind": np.array("sketch"),
            "first": vec["indices"][:1].astype(np.int64),
            "last": vec["indices"][-1:].astype(np.int64),
            "timestamps": vec["timestamps"][[0, -1]],
            "funcs": vec["funcs"],
            "centroids": fit.centroids.astype(np.float64),
            "counts": counts,
            "inertia": np.asarray([fit.inertia], dtype=np.float64),
        }

    # ------------------------------------------------------------------
    # IntervalStore: writing
    # ------------------------------------------------------------------
    def append(self, stream_id: str, index: int, snapshot: GmonData,
               *, raw: Optional[bytes] = None) -> None:
        """Buffer one snapshot; a full buffer rolls into a raw segment.

        ``raw`` short-circuits serialization when the caller already
        holds the snapshot's gmon bytes (the service ingest path does —
        binary-protocol submissions arrive pre-serialized).
        """
        blob = bytes(raw) if raw is not None else dumps_gmon(snapshot)
        with self._lock:
            pending = self._pending.setdefault(stream_id, _Pending())
            last = (pending.indices[-1] if pending.indices
                    else self._last_index(stream_id))
            if last is not None and index <= last:
                raise CollectorError(
                    f"segment store appends must be in interval order: "
                    f"stream {stream_id!r} got index {index} after {last}")
            pending.indices.append(index)
            pending.timestamps.append(snapshot.timestamp)
            pending.blobs.append(blob)
            self.appends += 1
            if len(pending.indices) >= self.segment_intervals:
                self._flush_stream(stream_id)

    def _last_index(self, stream_id: str) -> Optional[int]:
        segs = self._streams.get(stream_id)
        return segs[-1].last if segs else None

    def _flush_stream(self, stream_id: str) -> None:
        pending = self._pending.get(stream_id)
        if not pending or not pending.indices:
            return
        meta = self._write_segment(
            stream_id, TIER_RAW, self._raw_arrays(pending),
            first=pending.indices[0], last=pending.indices[-1],
            t0=pending.timestamps[0], t1=pending.timestamps[-1],
            count=len(pending.indices))
        self._streams.setdefault(stream_id, []).append(meta)
        self._pending[stream_id] = _Pending()
        self._write_manifest()

    def flush(self) -> None:
        """Roll every stream's pending buffer into (partial) segments."""
        with self._lock:
            for stream_id in list(self._pending):
                self._flush_stream(stream_id)

    # ------------------------------------------------------------------
    # IntervalStore: reading
    # ------------------------------------------------------------------
    def streams(self) -> List[str]:
        with self._lock:
            ids = set(self._streams) | {s for s, p in self._pending.items()
                                        if p.indices}
        return sorted(ids)

    def _plan(self, stream_id: str) -> Tuple[List[SegmentMeta], _Pending]:
        with self._lock:
            segs = list(self._streams.get(stream_id, []))
            pending = self._pending.get(stream_id, _Pending())
            snapshot = _Pending(list(pending.indices),
                                list(pending.timestamps),
                                list(pending.blobs))
        return segs, snapshot

    def _iter_segment(self, seg: SegmentMeta) -> Iterator[Tuple[int, GmonData]]:
        arrays = self._read_segment(seg)
        if seg.tier == TIER_RAW:
            return self._iter_raw(arrays)
        if seg.tier == TIER_VECTOR:
            return self._iter_vector(arrays)
        raise CollectorError(
            f"segment {seg.name} is a tier-{seg.tier} sketch: intervals "
            f"[{seg.first}, {seg.last}] are no longer replayable "
            "(narrow the window past the sketch tier)")

    def scan(self, stream_id: str,
             since: int = -1) -> Iterator[Tuple[int, GmonData]]:
        segs, pending = self._plan(stream_id)
        for seg in segs:
            if seg.last <= since:
                if seg.tier == TIER_SKETCH:
                    continue  # older than the watermark: legal to skip
                continue
            for index, snapshot in self._iter_segment(seg):
                if index > since:
                    yield index, snapshot
        for i, index in enumerate(pending.indices):
            if index > since:
                yield index, loads_gmon(pending.blobs[i])

    def window(self, stream_id: str, t0: Optional[float] = None,
               t1: Optional[float] = None) -> Iterator[Tuple[int, GmonData]]:
        """Timestamp-windowed scan that seeks using segment metadata.

        Whole segments outside ``[t0, t1)`` are skipped without being
        read — including sketch segments, so replays of recent windows
        work regardless of how cold the stream's history is.
        """
        segs, pending = self._plan(stream_id)
        for seg in segs:
            if t0 is not None and seg.t1 < t0:
                continue
            if t1 is not None and seg.t0 >= t1:
                break
            for index, snapshot in self._iter_segment(seg):
                if t0 is not None and snapshot.timestamp < t0:
                    continue
                if t1 is not None and snapshot.timestamp >= t1:
                    return
                yield index, snapshot
        for i, index in enumerate(pending.indices):
            ts = pending.timestamps[i]
            if t0 is not None and ts < t0:
                continue
            if t1 is not None and ts >= t1:
                return
            yield index, loads_gmon(pending.blobs[i])

    def replayable_after(self, stream_id: str) -> Optional[float]:
        """Earliest timestamp still held at a replayable tier."""
        segs, pending = self._plan(stream_id)
        for seg in segs:
            if seg.tier != TIER_SKETCH:
                return seg.t0
        return pending.timestamps[0] if pending.timestamps else None

    # ------------------------------------------------------------------
    # compaction + GC
    # ------------------------------------------------------------------
    def compact(self, stream_id: Optional[str] = None,
                raw_keep: Optional[int] = None,
                vector_keep: Optional[int] = None) -> Dict[str, int]:
        """Migrate cold segments to colder tiers; returns a report.

        Each conversion is individually crash-safe: the new segment file
        lands first, then the manifest commits (atomic rename), then the
        old file is unlinked — at every instant the manifest references
        exactly one complete copy of every interval.
        """
        raw_keep = self.policy.raw_keep if raw_keep is None else raw_keep
        vector_keep = (self.policy.vector_keep if vector_keep is None
                       else max(vector_keep, raw_keep))
        report = {"segments_compacted": 0, "bytes_before": 0, "bytes_after": 0}
        with self._lock:
            targets = ([stream_id] if stream_id is not None
                       else list(self._streams))
            for sid in targets:
                segs = self._streams.get(sid, [])
                if not segs:
                    continue
                newest = segs[-1].last
                pending = self._pending.get(sid)
                if pending and pending.indices:
                    newest = pending.indices[-1]
                for pos, seg in enumerate(list(segs)):
                    if seg.tier == TIER_RAW and newest - seg.last > raw_keep:
                        new_seg = self._compact_one(sid, seg, TIER_VECTOR)
                    elif (seg.tier == TIER_VECTOR
                          and newest - seg.last > vector_keep):
                        new_seg = self._compact_one(sid, seg, TIER_SKETCH)
                    else:
                        continue
                    report["segments_compacted"] += 1
                    report["bytes_before"] += seg.bytes
                    report["bytes_after"] += new_seg.bytes
        return report

    def _compact_one(self, stream_id: str, seg: SegmentMeta,
                     to_tier: int) -> SegmentMeta:
        arrays = self._read_segment(seg)
        if to_tier == TIER_VECTOR:
            pairs = list(self._iter_raw(arrays))
            new_arrays = self._vector_arrays([i for i, _ in pairs],
                                             [s for _, s in pairs])
        elif to_tier == TIER_SKETCH:
            new_arrays = self._sketch_arrays(arrays)
        else:
            raise ValidationError(f"cannot compact to tier {to_tier}")
        new_seg = self._write_segment(
            stream_id, to_tier, new_arrays, first=seg.first, last=seg.last,
            t0=seg.t0, t1=seg.t1, count=seg.count)
        segs = self._streams[stream_id]
        segs[segs.index(seg)] = new_seg
        self._write_manifest()
        self._segment_path(seg.name).unlink(missing_ok=True)
        return new_seg

    def gc(self, keep_versions: int = 2) -> List[str]:
        """Prune versioned ``.ipm``/``.ipckp`` artifacts under the store."""
        return [p.name for p in layout.gc_versioned(self.artifacts_dir,
                                                    keep=keep_versions)]

    # ------------------------------------------------------------------
    # background compaction
    # ------------------------------------------------------------------
    def start_compactor(self, interval: float = 30.0) -> None:
        """Run flush+compact+gc on a cadence in a daemon thread."""
        if interval <= 0:
            raise ValidationError("compactor interval must be positive")
        if self._compactor is not None:
            return
        self._compactor_stop.clear()

        def loop() -> None:
            while not self._compactor_stop.wait(interval):
                self.flush()
                self.compact()
                self.gc()

        self._compactor = threading.Thread(target=loop,
                                           name="segment-compactor",
                                           daemon=True)
        self._compactor.start()

    def stop_compactor(self) -> None:
        if self._compactor is None:
            return
        self._compactor_stop.set()
        self._compactor.join(timeout=5.0)
        self._compactor = None

    def close(self) -> None:
        self.stop_compactor()
        self.flush()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, Any]:
        """Totals per tier plus pending buffers (for stats/CLI)."""
        with self._lock:
            tiers: Dict[int, Dict[str, int]] = {
                t: {"segments": 0, "bytes": 0, "intervals": 0}
                for t in (TIER_RAW, TIER_VECTOR, TIER_SKETCH)}
            for segs in self._streams.values():
                for seg in segs:
                    tiers[seg.tier]["segments"] += 1
                    tiers[seg.tier]["bytes"] += seg.bytes
                    tiers[seg.tier]["intervals"] += seg.count
            return {
                "root": str(self.root),
                "streams": len(self.streams()),
                "appends": self.appends,
                "segment_writes": self.segment_writes,
                "pending_intervals": sum(len(p.indices)
                                         for p in self._pending.values()),
                "tiers": {str(t): info for t, info in tiers.items()},
                "total_bytes": sum(info["bytes"] for info in tiers.values()),
            }

    def sketches(self, stream_id: str) -> List[Dict[str, Any]]:
        """Decoded sketch-tier summaries for ``stream_id`` (coldest data)."""
        out = []
        segs, _pending = self._plan(stream_id)
        for seg in segs:
            if seg.tier != TIER_SKETCH:
                continue
            arrays = self._read_segment(seg)
            out.append({
                "first": int(arrays["first"][0]),
                "last": int(arrays["last"][0]),
                "t0": float(arrays["timestamps"][0]),
                "t1": float(arrays["timestamps"][1]),
                "funcs": [str(f) for f in arrays["funcs"].tolist()],
                "centroids": arrays["centroids"],
                "counts": arrays["counts"].tolist(),
                "inertia": float(arrays["inertia"][0]),
            })
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SegmentStore({str(self.root)!r}, "
                f"streams={len(self._streams)})")


def open_store(path: Union[str, Path], create: bool = False) -> IntervalStore:
    """Open whichever backend lives at ``path``.

    A directory containing (or asked to create) a segment manifest opens
    as a :class:`SegmentStore`; anything else opens as the legacy
    loose-file :class:`~repro.store.loose.LooseStore` — so every CLI
    verb accepts both layouts with one flag-free argument.
    """
    from repro.store.loose import LooseStore

    root = Path(path)
    if (root / layout.MANIFEST_NAME).exists():
        return SegmentStore(root, create=False)
    if create and not any(root.glob("gmon-r*.gmon")) and (
            not root.exists() or not any(root.iterdir())):
        return SegmentStore(root)
    return LooseStore(root, create=create)


__all__ = [
    "CompactionPolicy",
    "SegmentMeta",
    "SegmentStore",
    "TIER_RAW",
    "TIER_SKETCH",
    "TIER_VECTOR",
    "open_store",
    "MANIFEST_MAGIC",
    "MANIFEST_SCHEMA",
]
