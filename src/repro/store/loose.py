"""The legacy loose-file backend: one gmon file per interval.

This is the layout the original tool (and every PR before the segment
store) wrote: ``<dir>/gmon-r<rank:03d>-i<index:05d>.gmon``, one atomic
rename per snapshot.  It stays fully supported behind the unified
:class:`~repro.store.interface.IntervalStore` interface — old sample
directories keep loading, ``incprof run`` can still produce them — but
metadata costs O(files) per scan, which is exactly why the segment
store exists (see ``docs/STORAGE.md``).

Stream ids are decimal ranks (``"0"``, ``"1"``, …); anything else is a
:class:`~repro.util.errors.CollectorError`, since the file-name pattern
can only encode ranks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.gprof.gmon import GmonData, dumps_gmon, read_gmon
from repro.store import layout
from repro.store.interface import IntervalStore
from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import CollectorError, FormatError, SampleFileError


def _rank_of(stream_id: str) -> int:
    try:
        rank = int(stream_id)
    except (TypeError, ValueError):
        raise CollectorError(
            f"loose-file stores key streams by rank; {stream_id!r} is not "
            "a decimal rank (use a SegmentStore for arbitrary stream ids)")
    if rank < 0:
        raise CollectorError("rank must be non-negative")
    return rank


class LooseStore(IntervalStore):
    """Directory of per-interval gmon sample files."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise CollectorError(
                f"sample directory {self.directory} does not exist")

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def path_for(self, rank: int, index: int) -> Path:
        if rank < 0 or index < 0:
            raise CollectorError("rank and index must be non-negative")
        return self.directory / layout.loose_sample_name(rank, index)

    def _scan(self) -> Dict[int, Dict[int, Path]]:
        """One directory pass: ``{rank: {interval_index: path}}``.

        Every query is built on this single scan — the metadata cost of
        the loose layout, paid once per operation rather than once per
        rank.
        """
        index: Dict[int, Dict[int, Path]] = {}
        for path in self.directory.iterdir():
            parsed = layout.parse_loose_sample(path.name)
            if parsed is not None:
                rank, interval = parsed
                index.setdefault(rank, {})[interval] = path
        return index

    @staticmethod
    def _read(path: Path) -> GmonData:
        try:
            return read_gmon(path)
        except (FormatError, OSError) as exc:
            raise SampleFileError(path, exc) from exc

    # ------------------------------------------------------------------
    # IntervalStore
    # ------------------------------------------------------------------
    def append(self, stream_id: str, index: int, snapshot: GmonData) -> None:
        """Write one snapshot atomically (temp file + rename).

        A concurrent scan, or a crash mid-dump, can never observe a
        half-written sample.
        """
        rank = _rank_of(stream_id)
        atomic_write_bytes(self.path_for(rank, index), dumps_gmon(snapshot))

    def streams(self) -> List[str]:
        return [str(rank) for rank in sorted(self._scan())]

    def scan(self, stream_id: str,
             since: int = -1) -> Iterator[Tuple[int, GmonData]]:
        indexed = self._scan().get(_rank_of(stream_id), {})
        for i in sorted(indexed):
            if i > since:
                yield i, self._read(indexed[i])
