"""Profilers that populate gmon state.

Two implementations of the same contract (cumulative
:class:`~repro.gprof.gmon.GmonData` with a ``snapshot()`` method):

- :class:`~repro.profiler.sampling.SamplingProfiler` observes a simulated
  :class:`~repro.simulate.engine.Engine` and reproduces gprof's mechanism
  exactly — a 100 Hz PC-sampling histogram plus mcount call arcs — in
  virtual time.
- :class:`~repro.profiler.tracing.TracingProfiler` profiles *real* Python
  code via ``sys.setprofile``, measuring per-function self-time with a
  wall clock and quantizing it into histogram ticks, so the identical
  downstream pipeline runs on live executions.
"""

from repro.profiler.sampling import SamplingProfiler
from repro.profiler.tracing import TracingProfiler
from repro.profiler.sigprof import SigprofSampler

__all__ = ["SamplingProfiler", "TracingProfiler", "SigprofSampler"]
