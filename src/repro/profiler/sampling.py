"""Virtual-time PC-sampling profiler (the gprof runtime, simulated).

gprof's runtime keeps (a) a histogram incremented by a SIGPROF handler
every 10 ms attributing the sample to the interrupted PC's function, and
(b) call arcs recorded by the mcount prologue.  This observer reproduces
both from engine events:

- for a work segment ``[t0, t1)`` of function *f*, the samples landing in
  *f* are exactly the multiples of the sample period inside ``(t0, t1]`` —
  computed in closed form rather than by iterating ticks;
- every ``on_call``/``on_batch_calls`` event adds to the arc table.

Because sample instants are global clock multiples, a snapshot taken at an
interval boundary sees precisely the ticks accrued so far, including for a
function still mid-execution — the property IncProf's differencing relies
on to observe long-running (*loop*-type) functions with zero new calls.
"""

from __future__ import annotations

import math

import numpy as np

from repro.gprof.gmon import GmonData
from repro.simulate.engine import EngineObserver
from repro.util.errors import ValidationError

#: gprof's historical profiling rate: one sample per 10 ms.
DEFAULT_SAMPLE_PERIOD = 0.01

# Guard against float error when a segment boundary coincides with a
# sample instant: a tick at exactly t belongs to the segment ending at t.
_EPS = 1e-9


def ticks_in_segment(t0: float, t1: float, period: float) -> int:
    """Number of sampling instants in ``(t0, t1]`` for the given period."""
    if t1 < t0:
        raise ValidationError("segment end precedes start")
    return int(math.floor(t1 / period + _EPS)) - int(math.floor(t0 / period + _EPS))


class SamplingProfiler(EngineObserver):
    """Engine observer accumulating cumulative gmon state.

    ``jitter_sigma`` models SIGPROF timer jitter: the count of samples a
    work segment receives is perturbed by ~N(0, sigma*sqrt(ticks)),
    reproducing the per-interval sampling noise a real 100 Hz profiler
    shows.  Zero ticks stay zero — jitter never fabricates activity for
    functions below the sampling floor.
    """

    def __init__(
        self,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        rank: int = 0,
        jitter_sigma: float = 0.0,
        rng=None,
    ) -> None:
        if sample_period <= 0:
            raise ValidationError("sample_period must be positive")
        if jitter_sigma < 0:
            raise ValidationError("jitter_sigma must be non-negative")
        self.sample_period = sample_period
        self.rank = rank
        self.jitter_sigma = jitter_sigma
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._data = GmonData(sample_period=sample_period, rank=rank)
        self.total_samples = 0

    # ------------------------------------------------------------------
    # EngineObserver protocol
    # ------------------------------------------------------------------
    def on_work(self, func: str, t0: float, t1: float) -> None:
        ticks = ticks_in_segment(t0, t1, self.sample_period)
        if ticks and self.jitter_sigma > 0.0:
            noise = self._rng.normal(0.0, self.jitter_sigma * np.sqrt(ticks))
            ticks = max(0, ticks + int(round(noise)))
        if ticks:
            self._data.add_ticks(func, ticks)
            self.total_samples += ticks

    def on_call(self, caller: str, callee: str, t: float, count: int = 1) -> None:
        self._data.add_arc(caller, callee, count)

    # batch self-time arrives through on_work (the engine pushes the callee
    # frame for the batch's aggregate work), and batch arcs arrive through
    # on_call with count=n, so no extra handling is needed here.

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, timestamp: float) -> GmonData:
        """Deep-copy the cumulative state, stamped with ``timestamp``.

        This is the operation IncProf performs by invoking glibc's hidden
        gmon write function: the live counters keep accumulating, the copy
        is what lands in the per-interval file.
        """
        snap = self._data.copy()
        snap.timestamp = timestamp
        return snap

    def reset(self) -> None:
        """Clear all accumulated state (new run)."""
        self._data = GmonData(sample_period=self.sample_period, rank=self.rank)
        self.total_samples = 0
