"""A real SIGPROF statistical sampler for live Python code.

The tracing profiler measures live runs deterministically; this one does
what gprof actually does: arm an interval timer (``ITIMER_PROF``) and,
on every signal, attribute one histogram tick to the function currently
executing — genuine statistical PC sampling, with all its properties
(sampling error, blindness to blocked time) faithfully included.

Constraints inherited from the mechanism:

- signals are delivered to the main thread only, so the profiled code
  must run there (the IncProf collector thread is unaffected);
- like gprof, time spent blocked (sleeping, waiting on I/O) receives no
  samples — ``ITIMER_PROF`` counts CPU time.

Call arcs are not collected (a pure sampler has no mcount); combine with
the tracing profiler when arcs are needed.
"""

from __future__ import annotations

import signal
import sys
import threading
from typing import Callable, Dict, Optional

from repro.gprof.gmon import GmonData
from repro.profiler.sampling import DEFAULT_SAMPLE_PERIOD
from repro.util.errors import CollectorError, ValidationError

NameFilter = Callable[[str], bool]


class SigprofSampler:
    """Interval-timer-driven statistical profiler (main thread only)."""

    def __init__(
        self,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        name_filter: Optional[NameFilter] = None,
        rank: int = 0,
    ) -> None:
        if sample_period <= 0:
            raise ValidationError("sample_period must be positive")
        self.sample_period = sample_period
        self.name_filter = name_filter
        self.rank = rank
        self._hist: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._active = False
        self._previous_handler = None
        self.total_samples = 0

    # ------------------------------------------------------------------
    def _on_signal(self, _signum, frame) -> None:
        # Walk up to the nearest frame passing the filter — the same
        # attribution a PC sampler achieves for inlined/library code.
        name = None
        current = frame
        while current is not None:
            qualname = getattr(current.f_code, "co_qualname", current.f_code.co_name)
            if self.name_filter is None or self.name_filter(qualname):
                name = qualname
                break
            current = current.f_back
        if name is not None:
            with self._lock:
                self._hist[name] = self._hist.get(name, 0) + 1
                self.total_samples += 1

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the profiling timer (must run on the main thread)."""
        if self._active:
            raise CollectorError("sampler already active")
        if threading.current_thread() is not threading.main_thread():
            raise CollectorError("SIGPROF sampling must start on the main thread")
        self._previous_handler = signal.signal(signal.SIGPROF, self._on_signal)
        signal.setitimer(signal.ITIMER_PROF, self.sample_period, self.sample_period)
        self._active = True

    def stop(self) -> None:
        """Disarm the timer and restore the previous handler."""
        if not self._active:
            return
        signal.setitimer(signal.ITIMER_PROF, 0.0)
        if self._previous_handler is not None:
            signal.signal(signal.SIGPROF, self._previous_handler)
        self._active = False

    def __enter__(self) -> "SigprofSampler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    def snapshot(self, timestamp: float = 0.0) -> GmonData:
        """Cumulative histogram as gmon state (no arcs — pure sampler)."""
        data = GmonData(sample_period=self.sample_period, rank=self.rank,
                        timestamp=timestamp)
        with self._lock:
            data.hist = dict(self._hist)
        return data

    def reset(self) -> None:
        with self._lock:
            self._hist.clear()
            self.total_samples = 0
