"""Live profiler for real Python code (``sys.setprofile``-based).

This is the "live mode" counterpart of the simulated sampling profiler:
it measures per-function self-time and call arcs for genuine Python
executions (the apps' real NumPy kernels), then quantizes self-time into
gprof histogram ticks so downstream analysis is byte-for-byte the same
pipeline the simulated runs use.

Design notes
------------
- ``sys.setprofile`` is per-thread; the profiler instruments the thread
  that calls :meth:`start`.  A live IncProf collector thread calls
  :meth:`snapshot` concurrently, so all mutation happens under a lock.
- Self-time accounting is the classic tracing scheme: at every profile
  event the elapsed time since the previous event is attributed to the
  function currently on top of the shadow stack.
- C-function events are attributed to the *calling* Python function
  (matching gprof's view of statically linked leaf work, and keeping
  NumPy kernels charged to the app function that invoked them).
- A ``name_filter`` limits which functions appear in snapshots (e.g. only
  the app's module) without disturbing time accounting for the rest of
  the stack; filtered frames have their self-time folded into the nearest
  unfiltered ancestor so total time is preserved.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.gprof.gmon import GmonData
from repro.profiler.sampling import DEFAULT_SAMPLE_PERIOD
from repro.simulate.engine import SPONTANEOUS
from repro.util.errors import CollectorError, ValidationError

NameFilter = Callable[[str], bool]


def _qualname(frame) -> str:
    code = frame.f_code
    return getattr(code, "co_qualname", code.co_name)


class TracingProfiler:
    """Measure real Python execution into cumulative gmon state."""

    def __init__(
        self,
        sample_period: float = DEFAULT_SAMPLE_PERIOD,
        rank: int = 0,
        name_filter: Optional[NameFilter] = None,
        file_filter: Optional[NameFilter] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if sample_period <= 0:
            raise ValidationError("sample_period must be positive")
        self.sample_period = sample_period
        self.rank = rank
        self.name_filter = name_filter
        #: Optional predicate on the defining file (``co_filename``) — the
        #: analogue of gprof only seeing the instrumented binary's own
        #: symbols: frames from filtered files fold into their callers.
        self.file_filter = file_filter
        self._clock = clock
        # Re-entrant: snapshot() may be called from the *profiled* thread
        # (its own function-call events fire mid-snapshot and must be able
        # to re-acquire the lock), as well as from a collector thread.
        self._lock = threading.RLock()
        self._self_time: Dict[str, float] = {}
        self._arcs: Dict[Tuple[str, str], int] = {}
        # Shadow stack of (name, passes_filter); filtered frames redirect
        # their self-time to the nearest unfiltered ancestor.
        self._stack: List[Tuple[str, bool]] = [(SPONTANEOUS, False)]
        self._last_event_time: Optional[float] = None
        self._active = False
        self._start_time: Optional[float] = None
        self.elapsed: float = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin profiling the current thread."""
        if self._active:
            raise CollectorError("profiler already active")
        self._active = True
        self._start_time = self._clock()
        self._last_event_time = self._start_time
        sys.setprofile(self._profile_event)

    def stop(self) -> None:
        """Stop profiling; accumulated state remains queryable."""
        sys.setprofile(None)
        if self._active:
            now = self._clock()
            with self._lock:
                self._attribute_elapsed(now)
            self.elapsed = now - (self._start_time or now)
        self._active = False

    def __enter__(self) -> "TracingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # event handling
    # ------------------------------------------------------------------
    def _attribute_elapsed(self, now: float) -> None:
        """Charge time since the last event to the current stack top."""
        last = self._last_event_time
        if last is not None and now > last:
            name, passes = self._stack[-1]
            if not passes:
                name = self._nearest_unfiltered()
            if name is not None:
                self._self_time[name] = self._self_time.get(name, 0.0) + (now - last)
        self._last_event_time = now

    def _nearest_unfiltered(self) -> Optional[str]:
        for name, passes in reversed(self._stack):
            if passes:
                return name
        return None

    def _passes(self, name: str) -> bool:
        return self.name_filter(name) if self.name_filter else True

    def _profile_event(self, frame, event: str, arg) -> None:
        now = self._clock()
        with self._lock:
            self._attribute_elapsed(now)
            if event == "call":
                name = _qualname(frame)
                passes = self._passes(name)
                if passes and self.file_filter is not None:
                    passes = self.file_filter(frame.f_code.co_filename)
                if passes:
                    caller = self._nearest_unfiltered() or SPONTANEOUS
                    key = (caller, name)
                    self._arcs[key] = self._arcs.get(key, 0) + 1
                self._stack.append((name, passes))
            elif event == "return":
                if len(self._stack) > 1:
                    self._stack.pop()
            # c_call / c_return / c_exception: time already attributed to
            # the Python caller by _attribute_elapsed; nothing else to do.

    # ------------------------------------------------------------------
    # snapshotting
    # ------------------------------------------------------------------
    def snapshot(self, timestamp: Optional[float] = None) -> GmonData:
        """Thread-safe copy of the cumulative profile as gmon state.

        Self-time is quantized to histogram ticks (``round(t / period)``),
        mirroring what a 100 Hz sampler would have recorded in expectation.
        """
        now = self._clock()
        with self._lock:
            if self._active:
                self._attribute_elapsed(now)
            data = GmonData(sample_period=self.sample_period, rank=self.rank)
            if timestamp is None:
                timestamp = now - (self._start_time or now)
            data.timestamp = timestamp
            for name, seconds in self._self_time.items():
                ticks = int(round(seconds / self.sample_period))
                if ticks:
                    data.hist[name] = ticks
            data.arcs = dict(self._arcs)
        return data

    def reset(self) -> None:
        """Clear accumulated state (keeps filter/period configuration)."""
        with self._lock:
            self._self_time.clear()
            self._arcs.clear()


def module_filter(*module_prefixes: str) -> NameFilter:
    """Build a name filter accepting functions defined in given modules.

    Matches on qualified names: a function passes if any prefix matches the
    start of its qualname, or it is a plain function defined at module
    level in code whose ``co_qualname`` equals its name.  Most callers
    instead pass an explicit set of function names via
    :func:`names_filter`.
    """
    prefixes = tuple(module_prefixes)

    def _filter(name: str) -> bool:
        return name.startswith(prefixes)

    return _filter


def names_filter(names) -> NameFilter:
    """Build a name filter accepting exactly the given function names."""
    allowed = frozenset(names)
    return lambda name: name in allowed
