"""SeedSequence-driven scenario generation.

Turns the declarative IR of :mod:`repro.apps.spec` into a *population*:
:func:`generate_scenario` maps ``(seed, tier)`` to one fully-determined
:class:`~repro.apps.spec.ScenarioSpec` — kernel universe, per-phase
coverage fractions drawn from a normal/lognormal/uniform family, and a
phase timeline walked from a Markov phase grammar — and the registry
gains the lazy family ``scenario:seed=<int>,tier=<easy|medium|hard>``
so every generated workload is addressable by name from the CLI, the
eval sweeps, and the service load generator.

Determinism contract: the same ``(seed, tier)`` yields a byte-identical
``ScenarioSpec.to_obj()`` in any process on any platform (all draws come
from one ``np.random.Generator`` seeded by a ``SeedSequence`` over the
scenario coordinates), and therefore an identical ground-truth timeline
and bit-identical pipeline behaviour.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.registry import register_factory
from repro.apps.spec import (KernelSpec, KernelUse, ScenarioApp,
                             ScenarioPhase, ScenarioSpec)
from repro.gprof.gmon import GmonData
from repro.util.errors import AppError

#: Namespace tag mixed into every scenario's SeedSequence so scenario
#: streams never collide with other SeedSequence users in the codebase.
_SCENARIO_ENTROPY = 0x49505230  # "IPR0"

TIER_NAMES: Tuple[str, ...] = ("easy", "medium", "hard")
_TIER_CODE = {"easy": 1, "medium": 2, "hard": 3}

#: Kernel-name vocabulary; scenarios draw distinct verb/noun pairs.
_VERBS = ("compute", "pack", "reduce", "scan", "exchange", "solve",
          "sort", "hash", "filter", "merge", "update", "sample")
_NOUNS = ("grid", "halo", "tree", "matrix", "queue", "block",
          "graph", "cells", "field", "index", "buffer", "tiles")

_DISTRIBUTIONS = ("normal", "lognormal", "uniform")


@dataclass(frozen=True)
class TierSpec:
    """Difficulty knobs for one scenario tier.

    Ranges are inclusive bounds the generator draws from.  ``hard``
    differs from ``easy`` along every axis the detector is sensitive
    to: shorter phases (fewer intervals of evidence), lower busy
    coverage (more idle noise), weaker dominants with more background
    kernels (overlapping mixes), wider call-rate regimes, and longer,
    more tangled Markov timelines.
    """

    name: str
    n_kernels: Tuple[int, int]
    n_phase_types: Tuple[int, int]
    n_segments: Tuple[int, int]
    duration_range: Tuple[float, float]
    busy_range: Tuple[float, float]
    dominant_share: Tuple[float, float]  # dominant's fraction of busy time
    n_background: Tuple[int, int]        # non-dominant kernels per phase
    rate_decades: Tuple[float, float]    # log10 calls-per-second range
    self_loop: float                     # Markov self-transition weight
    distinct_dominants: bool             # each phase gets its own dominant


TIERS = {
    "easy": TierSpec(
        name="easy", n_kernels=(4, 6), n_phase_types=(2, 4),
        n_segments=(4, 8), duration_range=(10.0, 28.0),
        busy_range=(0.75, 0.95), dominant_share=(0.75, 0.9),
        n_background=(0, 2), rate_decades=(0.0, 3.0),
        self_loop=0.35, distinct_dominants=True),
    "medium": TierSpec(
        name="medium", n_kernels=(6, 10), n_phase_types=(3, 6),
        n_segments=(8, 16), duration_range=(5.0, 14.0),
        busy_range=(0.55, 0.9), dominant_share=(0.6, 0.8),
        n_background=(1, 3), rate_decades=(-0.3, 3.5),
        self_loop=0.25, distinct_dominants=True),
    "hard": TierSpec(
        name="hard", n_kernels=(8, 16), n_phase_types=(4, 8),
        n_segments=(16, 32), duration_range=(2.0, 7.0),
        busy_range=(0.3, 0.8), dominant_share=(0.45, 0.7),
        n_background=(2, 4), rate_decades=(-0.7, 4.3),
        self_loop=0.2, distinct_dominants=False),
}


def _draw(rng: np.random.Generator, family: str,
          lo: float, hi: float) -> float:
    """One value from ``family`` confined to ``[lo, hi]``.

    normal centres on the midpoint, lognormal on the geometric mean —
    the three families give distinctly shaped coverage/duration
    populations over the same support.
    """
    if family == "uniform":
        value = rng.uniform(lo, hi)
    elif family == "normal":
        value = rng.normal((lo + hi) / 2.0, (hi - lo) / 4.0)
    elif family == "lognormal":
        mu = (np.log(lo) + np.log(hi)) / 2.0
        value = float(np.exp(rng.normal(mu, 0.45)))
    else:
        raise AppError(f"unknown distribution family {family!r}")
    return float(min(hi, max(lo, value)))


def _draw_int(rng: np.random.Generator, bounds: Tuple[int, int]) -> int:
    return int(rng.integers(bounds[0], bounds[1] + 1))


def _markov_walk(rng: np.random.Generator, k: int, length: int,
                 self_loop: float) -> List[int]:
    """A timeline from a random phase grammar.

    The transition matrix is a Dirichlet draw per row blended with a
    self-loop boost (phases tend to persist, as in real iterative
    codes).  The walk is nudged to visit at least two distinct phase
    types so every scenario poses a real detection problem.
    """
    if k == 1:
        return [0] * length
    matrix = rng.dirichlet(np.ones(k), size=k)
    matrix = (1.0 - self_loop) * matrix + self_loop * np.eye(k)
    state = int(rng.integers(k))
    walk = [state]
    for _ in range(length - 1):
        state = int(rng.choice(k, p=matrix[state]))
        walk.append(state)
    if len(set(walk)) < 2:
        walk[-1] = (walk[0] + 1 + int(rng.integers(k - 1))) % k
    return walk


def scenario_name(seed: int, tier: str) -> str:
    """The canonical registry address of a generated scenario."""
    return f"scenario:seed={int(seed)},tier={tier}"


def generate_scenario(seed: int, tier: str = "medium") -> ScenarioSpec:
    """Deterministically generate one scenario from its coordinates."""
    try:
        tier_spec = TIERS[tier]
    except KeyError:
        raise AppError(
            f"unknown tier {tier!r}; known: {sorted(TIERS)}") from None
    seed = int(seed)
    ss = np.random.SeedSequence(
        entropy=(_SCENARIO_ENTROPY, _TIER_CODE[tier], seed))
    rng = np.random.default_rng(ss)

    family = str(rng.choice(_DISTRIBUTIONS))

    # Kernel universe: distinct verb/noun names, each with a
    # characteristic call-rate regime (log-uniform across the tier's
    # decades) and the canonical self-time jitter.
    n_kernels = _draw_int(rng, tier_spec.n_kernels)
    combos = rng.choice(len(_VERBS) * len(_NOUNS), size=n_kernels,
                        replace=False)
    kernels = []
    for combo in combos:
        verb = _VERBS[int(combo) // len(_NOUNS)]
        noun = _NOUNS[int(combo) % len(_NOUNS)]
        rate = float(10.0 ** rng.uniform(*tier_spec.rate_decades))
        kernels.append(KernelSpec(name=f"{verb}_{noun}",
                                  calls_per_s=round(rate, 4)))

    # Phase types: a dominant kernel plus background mix; coverage
    # fractions come from the scenario's distribution family.
    n_phases = min(_draw_int(rng, tier_spec.n_phase_types), n_kernels)
    if tier_spec.distinct_dominants:
        dominants = [int(d) for d in
                     rng.choice(n_kernels, size=n_phases, replace=False)]
    else:
        dominants = [int(d) for d in
                     rng.choice(n_kernels, size=n_phases, replace=True)]
    phases = []
    for p, dom in enumerate(dominants):
        duration = round(_draw(rng, family, *tier_spec.duration_range), 3)
        busy = _draw(rng, family, *tier_spec.busy_range)
        dom_share = busy * rng.uniform(*tier_spec.dominant_share)
        others = [k for k in range(n_kernels) if k != dom]
        n_bg = min(_draw_int(rng, tier_spec.n_background), len(others))
        mix = [KernelUse(kernel=dom, share=round(dom_share, 4))]
        if n_bg:
            bg_kernels = rng.choice(len(others), size=n_bg, replace=False)
            weights = rng.dirichlet(np.ones(n_bg))
            remainder = busy - dom_share
            for slot, weight in zip(bg_kernels, weights):
                share = round(float(remainder * weight), 4)
                if share >= 1e-3:
                    mix.append(KernelUse(kernel=others[int(slot)],
                                         share=share))
        phases.append(ScenarioPhase(
            name=f"p{p}-{kernels[dom].name}", duration=duration,
            mix=tuple(mix)))

    n_segments = _draw_int(rng, tier_spec.n_segments)
    timeline = _markov_walk(rng, n_phases, n_segments, tier_spec.self_loop)

    return ScenarioSpec(
        name=scenario_name(seed, tier),
        kernels=tuple(kernels),
        phases=tuple(phases),
        timeline=tuple(timeline),
        tier=tier,
        seed=seed,
    )


# ----------------------------------------------------------------------
# the population generator
# ----------------------------------------------------------------------
class ScenarioGenerator:
    """A reproducible stream of scenarios spanning the tiers.

    One root seed drives a ``SeedSequence`` whose generated state
    becomes the child scenario seeds; tiers round-robin.  Every emitted
    spec's name is its registry address, so populations materialized
    here are re-addressable anywhere (`get_app(spec.name)`).
    """

    def __init__(self, seed: int = 0,
                 tiers: Sequence[str] = TIER_NAMES) -> None:
        for tier in tiers:
            if tier not in TIERS:
                raise AppError(f"unknown tier {tier!r}; known: {sorted(TIERS)}")
        if not tiers:
            raise AppError("need at least one tier")
        self.seed = int(seed)
        self.tiers = tuple(tiers)

    def coordinates(self, n: int) -> List[Tuple[int, str]]:
        """``(seed, tier)`` coordinates of the first ``n`` scenarios."""
        child = np.random.SeedSequence(self.seed).generate_state(
            n, dtype=np.uint32)
        return [(int(child[i]), self.tiers[i % len(self.tiers)])
                for i in range(n)]

    def specs(self, n: int) -> List[ScenarioSpec]:
        return [generate_scenario(seed, tier)
                for seed, tier in self.coordinates(n)]

    def iter_specs(self, n: int) -> Iterator[ScenarioSpec]:
        for seed, tier in self.coordinates(n):
            yield generate_scenario(seed, tier)

    def apps(self, n: int) -> List[ScenarioApp]:
        return [ScenarioApp(spec) for spec in self.specs(n)]


# ----------------------------------------------------------------------
# registry factory: scenario:seed=<int>,tier=<easy|medium|hard>
# ----------------------------------------------------------------------
_ARG_RE = re.compile(r"^\s*(?:(?P<key>[a-z_]+)\s*=\s*)?(?P<value>[^\s,]+)\s*$")


def parse_scenario_args(argstr: str) -> Tuple[int, str]:
    """Parse factory args: ``seed=42,tier=hard`` (any order), or ``42``."""
    seed: Optional[int] = None
    tier = "medium"
    for part in filter(None, (p.strip() for p in argstr.split(","))):
        match = _ARG_RE.match(part)
        if not match:
            raise AppError(f"bad scenario argument {part!r}")
        key, value = match.group("key"), match.group("value")
        if key in (None, "seed"):
            try:
                seed = int(value)
            except ValueError:
                raise AppError(f"bad scenario seed {value!r}") from None
        elif key == "tier":
            if value not in TIERS:
                raise AppError(
                    f"unknown tier {value!r}; known: {sorted(TIERS)}")
            tier = value
        else:
            raise AppError(f"unknown scenario argument {key!r} "
                           "(expected seed=<int>, tier=<name>)")
    if seed is None:
        raise AppError("scenario address needs a seed, "
                       "e.g. scenario:seed=42,tier=hard")
    return seed, tier


def _build_scenario_app(argstr: str) -> ScenarioApp:
    seed, tier = parse_scenario_args(argstr)
    return ScenarioApp(generate_scenario(seed, tier))


register_factory(
    "scenario", _build_scenario_app,
    kind="generated",
    description="Generated workload with exact ground-truth phases",
    signature="seed=<int>,tier=<easy|medium|hard>",
)


# ----------------------------------------------------------------------
# spec-shaped service traffic (no engine required)
# ----------------------------------------------------------------------
def scenario_snapshots(spec: ScenarioSpec, n_intervals: int,
                       interval: float = 1.0, ticks_per_interval: int = 200,
                       sample_period: float = 0.01,
                       rank: int = 0) -> List[GmonData]:
    """Cumulative gmon snapshots tracing the spec's ground truth.

    Builds the exact expected profile analytically from the phase
    timeline — per interval, each kernel receives histogram ticks
    proportional to its time-weighted coverage and arc counts from its
    call rate.  Cheap enough for fleet load tests (no simulation
    engine), while still carrying the scenario's real phase structure;
    intervals past the end of the timeline wrap around, so streams of
    any length can be drawn.
    """
    if n_intervals <= 0:
        raise AppError("need a positive number of intervals")
    segments = spec.segments()
    total = segments[-1][2]
    cumulative = GmonData(sample_period=sample_period, rank=rank)
    snapshots: List[GmonData] = []
    for i in range(n_intervals):
        t0 = i * interval
        t1 = t0 + interval
        # Per-kernel occupancy of [t0, t1): overlap each wrapped copy of
        # every ground-truth segment with the interval window.
        shares = np.zeros(len(spec.kernels))
        calls = np.zeros(len(spec.kernels))
        m0 = int(np.floor(t0 / total))
        m1 = int(np.floor((t1 - 1e-12) / total))
        for m in range(m0, m1 + 1):
            base = m * total
            for idx, s0, s1 in segments:
                lo = max(t0, base + s0)
                hi = min(t1, base + s1)
                if hi <= lo:
                    continue
                overlap = hi - lo
                for use in spec.phases[idx].mix:
                    kernel = spec.kernels[use.kernel]
                    rate = (use.calls_per_s if use.calls_per_s is not None
                            else kernel.calls_per_s)
                    shares[use.kernel] += use.share * overlap
                    calls[use.kernel] += rate * overlap
        for k, kernel in enumerate(spec.kernels):
            ticks = int(round(ticks_per_interval * shares[k] / interval))
            if ticks:
                cumulative.add_ticks(kernel.name, ticks)
            n_calls = int(round(calls[k]))
            if n_calls:
                cumulative.add_arc("main", kernel.name, n_calls)
        snap = cumulative.copy()
        snap.timestamp = t1
        snapshots.append(snap)
    return snapshots
