"""MiniAMR (adaptive mesh refinement proxy) workload model.

MiniAMR applies a stencil over a block-structured mesh that refines and
coarsens as objects move through it.  The paper's run: 16 ranks / 2
nodes, 459 s, and only **2** discovered phases (Table IV): the dominant
"normal computation" phase covered entirely by ``check_sum`` (body), and
a deviation phase covering the mid-run mesh adaptation (``allocate``,
loop) and the periodic large communication steps (``pack_block`` /
``unpack_block``, body).

Structure (full scale):

- ~385 normal steps (~1 s each): ``stencil_calc`` (many calls) +
  ``check_sum`` (one call per step — the low call count is why discovery
  prefers it over the manual ``stencil_calc`` site) + light per-face
  communication below the sampling floor;
- every ~32 steps, a large communication epoch: a pack stage, a barrier
  wait, and an unpack stage (idle-padded so boundary intervals cluster
  with the normal phase, as the paper's plots show);
- one mid-run mesh adaptation: a single long ``allocate`` call with
  deliberately varied per-interval intensity ("the large and varied
  deviation in the middle is a mesh adaptation").
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, chunked_work, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel

# ----------------------------------------------------------------------
# simulated program
# ----------------------------------------------------------------------
stencil_calc = leaf("stencil_calc")
pack_block = leaf("pack_block")
unpack_block = leaf("unpack_block")

NORMAL_STEPS = 385
COMM_EVERY = 75
FACE_COPIES_PER_STEP = 80_000
COMM_EPOCH_COPIES = 140_000


def _check_sum(ctx) -> None:
    # "not a simple mathematical checksum but more involved matrix
    # computations" — a real reduction over the mesh each step.
    ctx.work(AppModel.jitter(ctx.rng, 0.36, 0.025))


check_sum = SimFunction("check_sum", lambda ctx: _check_sum(ctx))


def _comm(ctx, heavy: bool) -> None:
    if heavy:
        # A large communication epoch: with 16 ranks the exchange is
        # dominated by network/barrier wait the sampler cannot attribute;
        # pack/unpack CPU bursts are short.  Unpacking continues after
        # packing has finished (messages drain), giving unpack-only
        # intervals at the tail — the paper's third phase-1 site.
        ctx.idle(AppModel.jitter(ctx.rng, 1.4, 0.1))
        for _ in range(5):
            ctx.call_batch(pack_block, COMM_EPOCH_COPIES, AppModel.jitter(ctx.rng, 0.21, 0.04))
            ctx.idle(AppModel.jitter(ctx.rng, 0.55, 0.12))
        for _ in range(5):
            ctx.call_batch(unpack_block, COMM_EPOCH_COPIES, AppModel.jitter(ctx.rng, 0.2, 0.04))
            ctx.idle(AppModel.jitter(ctx.rng, 0.55, 0.12))
        ctx.idle(AppModel.jitter(ctx.rng, 1.3, 0.1))
    else:
        ctx.call_batch(pack_block, FACE_COPIES_PER_STEP, 0.004)
        ctx.idle(0.02)
        ctx.call_batch(unpack_block, FACE_COPIES_PER_STEP, 0.004)


comm = SimFunction("comm", _comm)


def _allocate(ctx, total: float) -> None:
    # The mesh adaptation: one long-lived call, mostly waiting on block
    # redistribution, with short splitting bursts of varying intensity
    # ("the large and varied deviation in the middle").
    remaining = total
    while remaining > 0:
        burst = min(remaining, float(ctx.rng.uniform(0.18, 0.24)))
        ctx.work(burst)
        ctx.loop_tick()
        ctx.idle(float(ctx.rng.uniform(0.5, 0.9)))
        remaining -= burst


allocate = SimFunction("allocate", _allocate)


def _step(ctx) -> None:
    # Steps run just under the 1 s collection interval, so every interval
    # of the normal phase contains at least one check_sum call (making it
    # a body site, as the paper found).
    ctx.call_batch(stencil_calc, 48, AppModel.jitter(ctx.rng, 0.585, 0.025))
    ctx.call(check_sum)
    ctx.call(comm, False)
    ctx.idle(0.004)


def _main(ctx, scale: float = 1.0) -> None:
    steps = max(4, round(NORMAL_STEPS * scale))
    refine_at = steps // 2
    for step in range(steps):
        _step(ctx)
        if step == refine_at:
            ctx.call(allocate, 5.0 * max(scale, 0.25))
        elif step % COMM_EVERY == COMM_EVERY - 1:
            ctx.call(comm, True)


# ----------------------------------------------------------------------
# live kernels: a real block-structured AMR mini-app
# ----------------------------------------------------------------------
Block = Tuple[int, int, int, int]  # (level, i, j, k)


def live_stencil_calc(array: np.ndarray) -> np.ndarray:
    """7-point stencil sweep over one block's interior."""
    out = array.copy()
    out[1:-1, 1:-1, 1:-1] = (
        array[1:-1, 1:-1, 1:-1]
        + array[:-2, 1:-1, 1:-1]
        + array[2:, 1:-1, 1:-1]
        + array[1:-1, :-2, 1:-1]
        + array[1:-1, 2:, 1:-1]
        + array[1:-1, 1:-1, :-2]
        + array[1:-1, 1:-1, 2:]
    ) / 7.0
    return out


def live_check_sum(blocks: Dict[Block, np.ndarray]) -> float:
    return float(sum(b.sum() for b in blocks.values()))


def live_pack_block(array: np.ndarray) -> np.ndarray:
    """Serialize the six boundary faces into one message buffer."""
    faces = [array[0], array[-1], array[:, 0], array[:, -1], array[:, :, 0], array[:, :, -1]]
    return np.concatenate([f.ravel() for f in faces])


def live_unpack_block(array: np.ndarray, buffer: np.ndarray) -> None:
    """Scatter a packed buffer back onto the faces (self-exchange)."""
    shapes = [array[0], array[-1], array[:, 0], array[:, -1], array[:, :, 0], array[:, :, -1]]
    offset = 0
    views = [
        (slice(0, 1), slice(None), slice(None)),
        (slice(-1, None), slice(None), slice(None)),
        (slice(None), slice(0, 1), slice(None)),
        (slice(None), slice(-1, None), slice(None)),
        (slice(None), slice(None), slice(0, 1)),
        (slice(None), slice(None), slice(-1, None)),
    ]
    for face, view in zip(shapes, views):
        n = face.size
        array[view] = buffer[offset : offset + n].reshape(array[view].shape)
        offset += n


def live_allocate(blocks: Dict[Block, np.ndarray], to_refine: Block) -> None:
    """Refine one block into eight children at the next level."""
    parent = blocks.pop(to_refine)
    level, i, j, k = to_refine
    n = parent.shape[0]
    for di in (0, 1):
        for dj in (0, 1):
            for dk in (0, 1):
                child = np.repeat(
                    np.repeat(
                        np.repeat(
                            parent[
                                di * n // 2 : (di + 1) * n // 2,
                                dj * n // 2 : (dj + 1) * n // 2,
                                dk * n // 2 : (dk + 1) * n // 2,
                            ],
                            2, axis=0,
                        ),
                        2, axis=1,
                    ),
                    2, axis=2,
                )
                blocks[(level + 1, 2 * i + di, 2 * j + dj, 2 * k + dk)] = child


def live_coarsen(blocks: Dict[Block, np.ndarray], parent_key: Block) -> None:
    """Coarsen eight sibling blocks back into their parent (2:1 average).

    The inverse of :func:`live_allocate`: each child is block-averaged
    down by a factor of two per axis and the eight octants reassemble the
    parent block.  Raises ``KeyError`` if a sibling is missing.
    """
    level, i, j, k = parent_key
    children = {}
    for di in (0, 1):
        for dj in (0, 1):
            for dk in (0, 1):
                key = (level + 1, 2 * i + di, 2 * j + dj, 2 * k + dk)
                children[(di, dj, dk)] = blocks.pop(key)
    n = next(iter(children.values())).shape[0]
    parent = np.empty((n, n, n))
    for (di, dj, dk), child in children.items():
        # A 2x2x2 block average halves the child's resolution.
        down = child.reshape(n // 2, 2, n // 2, 2, n // 2, 2).mean(axis=(1, 3, 5))
        parent[
            di * n // 2 : (di + 1) * n // 2,
            dj * n // 2 : (dj + 1) * n // 2,
            dk * n // 2 : (dk + 1) * n // 2,
        ] = down
    blocks[parent_key] = parent


def live_main(scale: float = 1.0):
    """Real AMR run: stencil + checksum + comm, with a refinement
    mid-run and the coarsening that undoes it near the end (the mesh
    "adaptively refines and coarsens as objects move through it")."""
    n = 16
    blocks: Dict[Block, np.ndarray] = {
        (0, i, j, k): np.full((n, n, n), float(i + j + k + 1))
        for i in range(2) for j in range(2) for k in range(2)
    }
    steps = max(6, int(24 * scale))
    refined: Optional[Block] = None
    sums = []
    for step in range(steps):
        for key in list(blocks):
            blocks[key] = live_stencil_calc(blocks[key])
        sums.append(live_check_sum(blocks))
        for key in list(blocks):
            buf = live_pack_block(blocks[key])
            live_unpack_block(blocks[key], buf)
        if step == steps // 3:
            refined = max(blocks, key=lambda key: float(blocks[key].max()))
            live_allocate(blocks, refined)
        elif step == (2 * steps) // 3 and refined is not None:
            live_coarsen(blocks, refined)
            refined = None
    return sums


# ----------------------------------------------------------------------
@register_app
class MiniAMR(AppModel):
    """The MiniAMR adaptive-mesh-refinement proxy (paper Section VI-C)."""

    name = "miniamr"
    default_ranks = 16
    default_nodes = 2
    noise = NoiseModel(sigma=0.006)

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return SimFunction("main", lambda ctx: _main(ctx, scale))

    @property
    def manual_sites(self) -> Sequence[Site]:
        return (
            Site("check_sum", InstType.BODY),
            Site("stencil_calc", InstType.BODY),
            Site("comm", InstType.BODY),
        )

    def live_run(self) -> Optional[LiveRun]:
        return LiveRun(
            main=live_main,
            function_names=(
                "live_stencil_calc",
                "live_check_sum",
                "live_pack_block",
                "live_unpack_block",
                "live_allocate",
            ),
        )
