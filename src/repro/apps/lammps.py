"""LAMMPS (metal / Lennard-Jones mode) workload model.

The paper runs LAMMPS molecular dynamics with metal-type atoms under the
LJ force model: after initialization (``Velocity::create``) the run is one
core computation — ``PairLJCut::compute`` recomputing forces — with
periodic neighbor-list rebuilds (``NPairHalfBinNewtonTri::build``).
16 ranks / 2 nodes, 307 s, 4 discovered phases (Table V):

- phases 0 and 2 are both ``PairLJCut::compute`` (loop) — the clustering
  splits the compute continuum into "fully inside a force call" intervals
  and step-boundary intervals diluted by integration/communication; the
  paper notes they "should really be identified as a single phase";
- phase 1 is the rebuild phase (``NPairHalf...::build``, loop);
- phase 3 is startup: the *first* neighbor build (body — its covering
  interval contains the call) plus ``Velocity::create`` (loop).

The atom count is large enough that one force call spans multiple 1 s
intervals — that is why compute is *loop*-designated (zero new calls in
most of its intervals) — and per-pair utility calls (minimum-image
convention) supply the call volume behind the ~7.5 % IncProf overhead.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, chunked_work, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel

# ----------------------------------------------------------------------
# simulated program
# ----------------------------------------------------------------------
minimum_image = leaf("Domain::minimum_image")

N_STEPS = 93
REBUILD_EVERY = 9
PAIR_UTILITY_CALLS = 5_000_000


def _pair_compute(ctx) -> None:
    ctx.call_batch(minimum_image, PAIR_UTILITY_CALLS, 0.0)
    chunked_work(ctx, total=AppModel.jitter(ctx.rng, 2.45, 0.04), chunk=0.12)


def _npair_build(ctx, duration: float) -> None:
    chunked_work(ctx, total=duration, chunk=0.1)


def _velocity_create(ctx) -> None:
    # Startup is diluted by atom creation I/O and setup communication the
    # sampler cannot attribute, so initialization intervals sit at low
    # magnitude and cluster with the neighbor-build partial intervals
    # (the paper's phase 3).
    for _ in range(5):
        ctx.work(AppModel.jitter(ctx.rng, 0.55, 0.05))
        ctx.loop_tick()
        ctx.idle(AppModel.jitter(ctx.rng, 0.45, 0.10))


pair_lj_cut_compute = SimFunction("PairLJCut::compute", lambda ctx: _pair_compute(ctx))
npair_half_build = SimFunction("NPairHalfBinNewtonTri::build", _npair_build)
velocity_create = SimFunction("Velocity::create", lambda ctx: _velocity_create(ctx))
fix_nve_integrate = leaf("FixNVE::final_integrate")


def _main(ctx, scale: float = 1.0) -> None:
    # Startup: velocity initialization and the first neighbor build.
    ctx.call(velocity_create)
    ctx.idle(AppModel.jitter(ctx.rng, 1.2, 0.1))
    ctx.call(npair_half_build, AppModel.jitter(ctx.rng, 2.2, 0.05))
    ctx.idle(AppModel.jitter(ctx.rng, 0.8, 0.1))
    # MD timesteps: long force recomputations, halo exchange waits,
    # periodic reneighboring.
    steps = max(2, round(N_STEPS * scale))
    for step in range(1, steps + 1):
        ctx.call(pair_lj_cut_compute)
        ctx.call_batch(fix_nve_integrate, 32, 0.0)
        ctx.idle(float(ctx.rng.uniform(0.24, 0.5)))
        if step % REBUILD_EVERY == 0:
            # Atom exchange / border communication precedes reneighboring,
            # so rebuild intervals are free of compute tails.
            ctx.idle(float(ctx.rng.uniform(1.0, 1.5)))
            ctx.call(npair_half_build, AppModel.jitter(ctx.rng, 2.2, 0.06))


# ----------------------------------------------------------------------
# live kernels: real Lennard-Jones molecular dynamics
# ----------------------------------------------------------------------
def live_velocity_create(n: int, temperature: float, seed: int = 11) -> np.ndarray:
    """Maxwell-Boltzmann velocities with zero net momentum."""
    rng = np.random.default_rng(seed)
    v = rng.normal(0.0, np.sqrt(temperature), size=(n, 3))
    v -= v.mean(axis=0)
    return v


def live_npair_build(positions: np.ndarray, box: float, cutoff: float) -> Tuple[np.ndarray, np.ndarray]:
    """Half neighbor list via cell binning (i < j pairs within cutoff)."""
    n = positions.shape[0]
    ncell = max(1, int(box / cutoff))
    cell_size = box / ncell
    coords = np.clip((positions / cell_size).astype(int), 0, ncell - 1)
    cells = {}
    for idx in range(n):
        cells.setdefault(tuple(coords[idx]), []).append(idx)

    pairs_i, pairs_j = [], []
    cutoff_sq = cutoff * cutoff
    for (cx, cy, cz), members in cells.items():
        neigh_atoms = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    key = ((cx + dx) % ncell, (cy + dy) % ncell, (cz + dz) % ncell)
                    neigh_atoms.extend(cells.get(key, ()))
        neigh = np.array(neigh_atoms, dtype=np.int64)
        for i in members:
            cand = neigh[neigh > i]
            if cand.size == 0:
                continue
            delta = positions[cand] - positions[i]
            delta -= box * np.round(delta / box)  # minimum image
            dist_sq = np.einsum("ij,ij->i", delta, delta)
            hits = cand[dist_sq < cutoff_sq]
            pairs_i.extend([i] * hits.size)
            pairs_j.extend(hits.tolist())
    return np.array(pairs_i, dtype=np.int64), np.array(pairs_j, dtype=np.int64)


def live_pair_lj_cut_compute(positions: np.ndarray, pairs: Tuple[np.ndarray, np.ndarray],
                             box: float, epsilon: float = 1.0, sigma: float = 1.0) -> np.ndarray:
    """LJ 12-6 forces over the half neighbor list (Newton's third law)."""
    i, j = pairs
    forces = np.zeros_like(positions)
    if i.size == 0:
        return forces
    delta = positions[j] - positions[i]
    delta -= box * np.round(delta / box)
    r2 = np.einsum("ij,ij->i", delta, delta)
    r2 = np.maximum(r2, 1e-12)
    sr6 = (sigma * sigma / r2) ** 3
    magnitude = 24.0 * epsilon * (2.0 * sr6 * sr6 - sr6) / r2
    pair_force = magnitude[:, None] * delta
    np.add.at(forces, j, pair_force)
    np.add.at(forces, i, -pair_force)
    return forces


def live_lj_potential(positions: np.ndarray, pairs: Tuple[np.ndarray, np.ndarray],
                      box: float, epsilon: float = 1.0, sigma: float = 1.0) -> float:
    """Total LJ 12-6 potential energy over the half neighbor list."""
    i, j = pairs
    if i.size == 0:
        return 0.0
    delta = positions[j] - positions[i]
    delta -= box * np.round(delta / box)
    r2 = np.maximum(np.einsum("ij,ij->i", delta, delta), 1e-12)
    sr6 = (sigma * sigma / r2) ** 3
    return float(np.sum(4.0 * epsilon * (sr6 * sr6 - sr6)))


def live_nve_step(positions: np.ndarray, velocities: np.ndarray,
                  forces: np.ndarray, pairs, box: float, dt: float):
    """One velocity-Verlet (NVE) step; returns new (pos, vel, forces).

    The symplectic integrator LAMMPS's ``fix nve`` implements: half-kick,
    drift, force recomputation, half-kick.
    """
    velocities = velocities + 0.5 * dt * forces
    positions = (positions + dt * velocities) % box
    new_forces = live_pair_lj_cut_compute(positions, pairs, box)
    velocities = velocities + 0.5 * dt * new_forces
    return positions, velocities, new_forces


def live_main(scale: float = 1.0):
    """Real MD run: lattice start, neighbor lists, LJ forces, velocity-
    Verlet NVE steps; returns (kinetic, potential) energy per step."""
    n_side = max(3, int(round((64 * max(scale, 0.1)) ** (1 / 3))))
    spacing = 1.7
    box = n_side * spacing
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3), axis=-1).reshape(-1, 3)
    rng = np.random.default_rng(3)
    positions = grid * spacing + 0.5 * spacing + rng.uniform(-0.05, 0.05,
                                                             size=grid.shape)
    positions %= box
    n = positions.shape[0]
    velocities = live_velocity_create(n, temperature=0.02, seed=11)
    dt = 0.002
    cutoff = 2.5
    steps = max(4, int(20 * scale))
    pairs = live_npair_build(positions, box, cutoff)
    forces = live_pair_lj_cut_compute(positions, pairs, box)
    energies = []
    for step in range(steps):
        positions, velocities, forces = live_nve_step(
            positions, velocities, forces, pairs, box, dt
        )
        if (step + 1) % 5 == 0:
            pairs = live_npair_build(positions, box, cutoff)
            forces = live_pair_lj_cut_compute(positions, pairs, box)
        kinetic = 0.5 * float(np.einsum("ij,ij->", velocities, velocities))
        potential = live_lj_potential(positions, pairs, box)
        energies.append((kinetic, potential))
    return energies


# ----------------------------------------------------------------------
@register_app
class LAMMPS(AppModel):
    """LAMMPS metal/LJ molecular dynamics (paper Section VI-D)."""

    name = "lammps"
    default_ranks = 16
    default_nodes = 2
    noise = NoiseModel(sigma=0.008)
    # The paper's AppEKG prototype showed ~8% heartbeat overhead on LAMMPS
    # ("in-development AppEKG modifications can lower this significantly");
    # modeled as a systematic heartbeat-build factor.
    heartbeat_build_bias = 0.10

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return SimFunction("main", lambda ctx: _main(ctx, scale))

    @property
    def manual_sites(self) -> Sequence[Site]:
        return (
            Site("PairLJCut::compute", InstType.BODY),
            Site("NPairHalfBinNewtonTri::build", InstType.BODY),
        )

    def live_run(self) -> Optional[LiveRun]:
        return LiveRun(
            main=live_main,
            function_names=(
                "live_velocity_create",
                "live_npair_build",
                "live_pair_lj_cut_compute",
            ),
        )
