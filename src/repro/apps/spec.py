"""Declarative workload IR: kernels, phases, scenarios, and the lowering.

Every non-paper workload — the configurable :class:`~repro.apps.synthetic.
Synthetic` app, the methodology benches' staircases, and the generated
scenario population (:mod:`repro.apps.generator`) — is expressed through
one intermediate representation:

- :class:`KernelSpec` — a parameterized cost/call-rate kernel family: a
  named function with a characteristic call-rate regime and a self-time
  jitter;
- :class:`KernelUse` — one kernel's role inside a phase: its coverage
  (share of phase wall time spent as that kernel's self-time) and an
  optional per-phase call-rate override;
- :class:`ScenarioPhase` — a phase *type*: duration plus a kernel mix;
- :class:`ScenarioSpec` — the whole program: the kernel universe, the
  phase types, and a ``timeline`` of phase indices (drawn from a Markov
  phase grammar by the generator, or simply scripted).

A single lowering, :func:`build_program`, turns any spec into a
:class:`~repro.simulate.engine.SimFunction` runnable under the full
collection stack — there is exactly one executor, so ground truth and
executed behaviour can never drift apart.  The spec also *is* the ground
truth: :meth:`ScenarioSpec.truth_labels` returns the exact phase index
occupying any instant, which the accuracy sweeps score detection against
(:mod:`repro.eval.scenarios`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, leaf
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel
from repro.util.errors import AppError

#: Per-step multiplicative self-time noise used when a kernel does not
#: override it (matches the historical ``Synthetic`` executor).
DEFAULT_KERNEL_JITTER = 0.03

#: Executor step size in seconds: work is laid down in slices of at most
#: this long so snapshots taken mid-phase see consistent mixtures.
STEP_SECONDS = 1.0


@dataclass(frozen=True)
class KernelSpec:
    """A parameterized kernel family: name, call-rate regime, jitter."""

    name: str
    calls_per_s: float = 1.0
    jitter: float = DEFAULT_KERNEL_JITTER

    def __post_init__(self) -> None:
        if not self.name:
            raise AppError("kernel needs a non-empty name")
        if self.calls_per_s <= 0:
            raise AppError(f"kernel {self.name!r} needs a positive call rate")
        if self.jitter < 0:
            raise AppError(f"kernel {self.name!r} jitter must be >= 0")

    def to_obj(self) -> Dict[str, object]:
        return {"name": self.name, "calls_per_s": self.calls_per_s,
                "jitter": self.jitter}

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "KernelSpec":
        return cls(name=str(obj["name"]),
                   calls_per_s=float(obj["calls_per_s"]),
                   jitter=float(obj["jitter"]))


@dataclass(frozen=True)
class KernelUse:
    """One kernel's role inside a phase mix.

    ``share`` is the coverage fraction: the portion of the phase's wall
    time attributed to this kernel as self-time.  ``calls_per_s``
    overrides the family's rate for this phase when set.
    """

    kernel: int
    share: float
    calls_per_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kernel < 0:
            raise AppError("kernel index must be >= 0")
        if not 0.0 < self.share <= 1.0:
            raise AppError(f"kernel share {self.share} outside (0, 1]")
        if self.calls_per_s is not None and self.calls_per_s <= 0:
            raise AppError("call-rate override must be positive")

    def to_obj(self) -> Dict[str, object]:
        obj: Dict[str, object] = {"kernel": self.kernel, "share": self.share}
        if self.calls_per_s is not None:
            obj["calls_per_s"] = self.calls_per_s
        return obj

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "KernelUse":
        rate = obj.get("calls_per_s")
        return cls(kernel=int(obj["kernel"]), share=float(obj["share"]),
                   calls_per_s=None if rate is None else float(rate))


@dataclass(frozen=True)
class ScenarioPhase:
    """A phase type: name, nominal duration, kernel mix."""

    name: str
    duration: float
    mix: Tuple[KernelUse, ...]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise AppError(f"phase {self.name!r} needs positive duration")
        total = sum(use.share for use in self.mix)
        if total > 1.0 + 1e-9:
            raise AppError(
                f"phase {self.name!r} kernel shares sum to {total:.3f} > 1")

    @property
    def busy_share(self) -> float:
        """Total covered fraction; the rest of the phase is idle time."""
        return sum(use.share for use in self.mix)

    def dominant_kernel(self) -> Optional[int]:
        """Index of the kernel with the largest share, or None if empty."""
        if not self.mix:
            return None
        return max(self.mix, key=lambda use: use.share).kernel

    def to_obj(self) -> Dict[str, object]:
        return {"name": self.name, "duration": self.duration,
                "mix": [use.to_obj() for use in self.mix]}

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "ScenarioPhase":
        return cls(name=str(obj["name"]), duration=float(obj["duration"]),
                   mix=tuple(KernelUse.from_obj(u) for u in obj["mix"]))


#: Bumped when the IR schema changes shape.
SPEC_VERSION = 1


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete declarative workload: kernels, phase types, timeline."""

    name: str
    kernels: Tuple[KernelSpec, ...]
    phases: Tuple[ScenarioPhase, ...]
    timeline: Tuple[int, ...]
    tier: str = ""
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise AppError("scenario needs a non-empty name")
        if not self.kernels:
            raise AppError(f"scenario {self.name!r} needs at least one kernel")
        if not self.phases:
            raise AppError(f"scenario {self.name!r} needs at least one phase")
        if not self.timeline:
            raise AppError(f"scenario {self.name!r} needs a non-empty timeline")
        names = [k.name for k in self.kernels]
        if len(set(names)) != len(names):
            raise AppError(f"scenario {self.name!r} has duplicate kernel names")
        for phase in self.phases:
            for use in phase.mix:
                if use.kernel >= len(self.kernels):
                    raise AppError(
                        f"phase {phase.name!r} references kernel "
                        f"{use.kernel} but only {len(self.kernels)} exist")
        for idx in self.timeline:
            if not 0 <= idx < len(self.phases):
                raise AppError(
                    f"timeline references phase {idx} but only "
                    f"{len(self.phases)} exist")

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    @property
    def total_duration(self) -> float:
        return sum(self.phases[i].duration for i in self.timeline)

    @property
    def n_true_phases(self) -> int:
        """Distinct phase types the timeline actually visits."""
        return len(set(self.timeline))

    def segments(self, scale: float = 1.0) -> List[Tuple[int, float, float]]:
        """Ground-truth ``(phase_index, t0, t1)`` occupancy segments."""
        out: List[Tuple[int, float, float]] = []
        t = 0.0
        for idx in self.timeline:
            duration = self.phases[idx].duration * scale
            out.append((idx, t, t + duration))
            t += duration
        return out

    def truth_labels(self, times: Sequence[float],
                     scale: float = 1.0) -> np.ndarray:
        """Phase index occupying each instant in ``times``.

        Instants beyond the end of the run wrap around (the traffic
        generators loop a scenario to stream arbitrary lengths).
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return np.empty(0, dtype=int)
        boundaries = np.cumsum(
            [self.phases[i].duration * scale for i in self.timeline])
        wrapped = np.mod(times, boundaries[-1])
        slots = np.searchsorted(boundaries, wrapped, side="right")
        slots = np.clip(slots, 0, len(self.timeline) - 1)
        order = np.asarray(self.timeline, dtype=int)
        return order[slots]

    def expected_functions(self) -> List[str]:
        """Function names the profile should contain, sorted."""
        used = {use.kernel for i in set(self.timeline)
                for use in self.phases[i].mix}
        return sorted(self.kernels[k].name for k in used)

    def dominant_functions(self) -> List[str]:
        """Dominant kernel name per visited phase type, first-use order."""
        out: List[str] = []
        seen = set()
        for idx in self.timeline:
            dom = self.phases[idx].dominant_kernel()
            if dom is not None and dom not in seen:
                seen.add(dom)
                out.append(self.kernels[dom].name)
        return out

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_obj(self) -> Dict[str, object]:
        """A pure-JSON representation; deterministic field order."""
        obj: Dict[str, object] = {
            "version": SPEC_VERSION,
            "name": self.name,
            "tier": self.tier,
            "seed": self.seed,
            "kernels": [k.to_obj() for k in self.kernels],
            "phases": [p.to_obj() for p in self.phases],
            "timeline": list(self.timeline),
        }
        return obj

    def to_json(self) -> str:
        """Canonical byte-stable JSON (the determinism contract)."""
        return json.dumps(self.to_obj(), sort_keys=True, indent=1)

    @classmethod
    def from_obj(cls, obj: Dict[str, object]) -> "ScenarioSpec":
        version = int(obj.get("version", SPEC_VERSION))
        if version > SPEC_VERSION:
            raise AppError(f"scenario spec version {version} is newer than "
                           f"supported {SPEC_VERSION}")
        seed = obj.get("seed")
        return cls(
            name=str(obj["name"]),
            tier=str(obj.get("tier", "")),
            seed=None if seed is None else int(seed),
            kernels=tuple(KernelSpec.from_obj(k) for k in obj["kernels"]),
            phases=tuple(ScenarioPhase.from_obj(p) for p in obj["phases"]),
            timeline=tuple(int(i) for i in obj["timeline"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_obj(json.loads(text))


def concat_specs(name: str, *specs: ScenarioSpec) -> ScenarioSpec:
    """Splice scenarios end to end into one spec.

    Kernels are merged by name (first definition wins; later uses keep
    working because script call rates ride on the ``KernelUse``
    override, and generated kernel universes are disjoint by
    construction); timelines play in argument order.  Useful for
    building one stream that exhibits several shapes — e.g. training a
    fleet model that must classify traffic from multiple scenarios.
    """
    if not specs:
        raise AppError("concat_specs needs at least one spec")
    kernels: List[KernelSpec] = []
    index: Dict[str, int] = {}
    phases: List[ScenarioPhase] = []
    timeline: List[int] = []
    for spec in specs:
        remap: Dict[int, int] = {}
        for k, kernel in enumerate(spec.kernels):
            if kernel.name not in index:
                index[kernel.name] = len(kernels)
                kernels.append(kernel)
            remap[k] = index[kernel.name]
        phase_base = len(phases)
        for phase in spec.phases:
            mix = tuple(
                KernelUse(kernel=remap[use.kernel], share=use.share,
                          calls_per_s=use.calls_per_s
                          if use.calls_per_s is not None
                          else spec.kernels[use.kernel].calls_per_s)
                for use in phase.mix)
            phases.append(ScenarioPhase(name=phase.name,
                                        duration=phase.duration, mix=mix))
        timeline.extend(phase_base + idx for idx in spec.timeline)
    return ScenarioSpec(name=name, kernels=tuple(kernels),
                        phases=tuple(phases), timeline=tuple(timeline),
                        tier="composite")


# ----------------------------------------------------------------------
# the lowering: spec -> simulated program
# ----------------------------------------------------------------------
def build_program(spec: ScenarioSpec, scale: float = 1.0) -> SimFunction:
    """Lower a :class:`ScenarioSpec` to the root :class:`SimFunction`.

    The executor walks the timeline phase by phase; within a phase,
    work is laid down in steps of at most :data:`STEP_SECONDS`, each
    step batch-calling every kernel in the mix with jittered self-time
    proportional to its share and call counts from its rate, then idling
    the uncovered remainder.  This is the *only* executor for
    spec-expressed workloads — detection accuracy is always measured
    against exactly what ran.
    """
    # Resolve the per-phase execution plans once, outside the body.
    plans = []
    for phase in spec.phases:
        entries = []
        for use in phase.mix:
            kernel = spec.kernels[use.kernel]
            rate = use.calls_per_s if use.calls_per_s is not None \
                else kernel.calls_per_s
            entries.append((leaf(kernel.name), use.share, rate, kernel.jitter))
        plans.append((phase.duration, entries))

    def _main(ctx) -> None:
        for idx in spec.timeline:
            duration, entries = plans[idx]
            remaining = duration * scale
            while remaining > 0:
                step = min(STEP_SECONDS, remaining)
                idle = step
                for func, share, rate, jitter in entries:
                    self_time = share * step * float(ctx.rng.normal(1.0, jitter))
                    self_time = max(1e-6, self_time)
                    n_calls = max(1, round(rate * step))
                    ctx.call_batch(func, n_calls, self_time)
                    idle -= self_time
                if idle > 0:
                    ctx.idle(idle)
                remaining -= step

    return SimFunction("main", _main)


# ----------------------------------------------------------------------
# the AppModel wrapper
# ----------------------------------------------------------------------
class ScenarioApp(AppModel):
    """A generated scenario as a registry-grade workload.

    Carries its :class:`ScenarioSpec` (and therefore exact ground
    truth); ``manual_sites`` are the dominant kernels of the visited
    phase types, mirroring what a developer would instrument by hand.
    """

    kind = "generated"
    default_ranks = 1
    default_nodes = 1
    noise = NoiseModel(sigma=0.005)

    def __init__(self, spec: ScenarioSpec) -> None:
        self.name = spec.name
        self.spec = spec
        super().__init__()

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return build_program(self.spec, scale)

    @property
    def manual_sites(self) -> Tuple[Site, ...]:
        return tuple(Site(fn, InstType.BODY)
                     for fn in self.spec.dominant_functions())

    def live_run(self) -> Optional[LiveRun]:
        return None

    def describe(self) -> Dict[str, object]:
        info = super().describe()
        info.update({
            "tier": self.spec.tier,
            "seed": self.spec.seed,
            "n_phase_types": self.spec.n_true_phases,
            "n_kernels": len(self.spec.kernels),
            "total_duration": round(self.spec.total_duration, 3),
            "timeline_length": len(self.spec.timeline),
        })
        return info
