"""Base class for workload applications."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel
from repro.util.errors import AppError


@dataclass
class LiveRun:
    """Description of an app's live (real-computation) entry point.

    ``main(scale)`` runs genuine Python/NumPy kernels; ``function_names``
    are the qualnames the tracing profiler should keep.
    """

    main: Callable[[float], object]
    function_names: Tuple[str, ...]


class AppModel(abc.ABC):
    """A modeled HPC application.

    Subclasses define the simulated program (:meth:`build_main`), the
    paper's manual instrumentation sites, and optionally a live entry
    point.  ``scale`` linearly shrinks/extends the run (iteration counts),
    with ``scale=1.0`` reproducing the paper's run length.
    """

    #: Registry key and display name.
    name: str = ""
    #: Registry category: ``paper`` (the five evaluation apps),
    #: ``synthetic`` (hand-scripted ground truth), or ``generated``
    #: (scenario-engine output).
    kind: str = "paper"
    #: Paper run configuration (Table I).
    default_ranks: int = 16
    default_nodes: int = 2
    #: Run-to-run measurement noise; ``systematic_bias`` on the NoiseModel
    #: is *not* used here — per-build biases live below.
    noise = NoiseModel(sigma=0.008)
    #: Systematic runtime factor of the ``-pg`` build relative to the plain
    #: build (MiniFE's consistently *negative* overhead at -O3).
    incprof_build_bias: float = 0.0
    #: Systematic runtime factor of the heartbeat build (LAMMPS's AppEKG
    #: prototype artifact).
    heartbeat_build_bias: float = 0.0

    def __init__(self) -> None:
        if not self.name:
            raise AppError(f"{type(self).__name__} must define a name")

    # ------------------------------------------------------------------
    # simulated program
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def build_main(self, scale: float = 1.0) -> SimFunction:
        """Build the root :class:`SimFunction` of the simulated program."""

    @property
    @abc.abstractmethod
    def manual_sites(self) -> Sequence[Site]:
        """The paper's hand-chosen instrumentation sites for this app."""

    # ------------------------------------------------------------------
    # live program (optional)
    # ------------------------------------------------------------------
    def live_run(self) -> Optional[LiveRun]:
        """Real-computation entry point, or None if not provided."""
        return None

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def jitter(rng: np.random.Generator, base: float, sigma: float = 0.04) -> float:
        """A jittered duration: ``base * N(1, sigma)``, floored near zero."""
        return max(1e-6, base * float(rng.normal(1.0, sigma)))

    @classmethod
    def description(cls) -> str:
        """One-line summary (the class docstring's first line)."""
        doc = (cls.__doc__ or "").strip().splitlines()
        return doc[0] if doc else ""

    def describe(self) -> Dict[str, object]:
        """Metadata summary used by the CLI and docs."""
        return {
            "name": self.name,
            "kind": self.kind,
            "description": self.description(),
            "default_ranks": self.default_ranks,
            "default_nodes": self.default_nodes,
            "manual_sites": [str(s) for s in self.manual_sites],
            "has_live_mode": self.live_run() is not None,
        }


def chunked_work(ctx, total: float, chunk: float, tick: bool = True) -> None:
    """Execute ``total`` seconds of self-time in loop-iteration chunks.

    Long-running functions (the *loop*-type instrumentation targets) are
    modeled as iterations of roughly ``chunk`` seconds, each ending with a
    loop-tick so loop heartbeats can attach.
    """
    remaining = float(total)
    while remaining > 0:
        step = min(chunk, remaining)
        ctx.work(step)
        if tick:
            ctx.loop_tick()
        remaining -= step


def leaf(name: str) -> SimFunction:
    """A bodyless leaf function (useful with ``ctx.call_batch``)."""
    return SimFunction(name=name)
