"""Workload models of the paper's five evaluation applications.

Each app provides:

- a **simulated program** — a call-tree workload model with the real
  application's function names, nesting, call-count regimes and phase
  sequencing, with per-function costs calibrated so a full-scale run
  matches the paper's runtime and per-function time shares (Tables I-VI);
- the paper's **manual instrumentation sites** for that app;
- a **live main** — genuine NumPy kernels with the same function names,
  runnable under the real tracing profiler (live mode).

Use :func:`get_app` / :func:`app_names` to access the registry.
"""

from repro.apps.base import AppModel, LiveRun
from repro.apps.registry import (app_names, describe_apps, get_app,
                                 is_known_app, paper_app_names, register_app,
                                 register_factory)
from repro.apps.spec import (KernelSpec, KernelUse, ScenarioApp,
                             ScenarioPhase, ScenarioSpec, build_program)

# Importing the app modules registers them (generator registers the
# lazy scenario: factory family).
from repro.apps import graph500, minife, miniamr, lammps, gadget2, synthetic  # noqa: F401
from repro.apps import generator  # noqa: F401
from repro.apps.generator import (ScenarioGenerator, generate_scenario,
                                  scenario_name, scenario_snapshots)

__all__ = [
    "AppModel", "LiveRun", "get_app", "app_names", "paper_app_names",
    "register_app", "register_factory", "describe_apps", "is_known_app",
    "KernelSpec", "KernelUse", "ScenarioPhase", "ScenarioSpec",
    "ScenarioApp", "build_program", "ScenarioGenerator",
    "generate_scenario", "scenario_name", "scenario_snapshots",
]
