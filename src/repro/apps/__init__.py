"""Workload models of the paper's five evaluation applications.

Each app provides:

- a **simulated program** — a call-tree workload model with the real
  application's function names, nesting, call-count regimes and phase
  sequencing, with per-function costs calibrated so a full-scale run
  matches the paper's runtime and per-function time shares (Tables I-VI);
- the paper's **manual instrumentation sites** for that app;
- a **live main** — genuine NumPy kernels with the same function names,
  runnable under the real tracing profiler (live mode).

Use :func:`get_app` / :func:`app_names` to access the registry.
"""

from repro.apps.base import AppModel, LiveRun
from repro.apps.registry import get_app, app_names, paper_app_names, register_app

# Importing the app modules registers them.
from repro.apps import graph500, minife, miniamr, lammps, gadget2, synthetic  # noqa: F401

__all__ = ["AppModel", "LiveRun", "get_app", "app_names", "paper_app_names", "register_app"]
