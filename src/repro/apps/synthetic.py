"""A configurable synthetic workload with known ground-truth phases.

None of the paper's applications comes with ground truth — the authors
judge discovery against their own manual instrumentation.  This app
closes that gap for testing and demos: you *declare* a phase script
(which functions run, for how long, with what call rates) and the
workload executes it, so detection accuracy can be measured exactly.

Since the scenario-substrate refactor, ``Synthetic`` is a thin scripting
front-end over the declarative IR in :mod:`repro.apps.spec`: the phase
script lowers to a :class:`~repro.apps.spec.ScenarioSpec` and runs
through the one shared :func:`~repro.apps.spec.build_program` executor —
the same one that runs generated scenarios.

Not part of the paper's evaluation; registered as ``synthetic`` for
use in examples, tests, and methodology experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.base import AppModel, LiveRun
from repro.apps.registry import register_app
from repro.apps.spec import (KernelSpec, KernelUse, ScenarioPhase,
                             ScenarioSpec, build_program)
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel
from repro.util.errors import AppError


@dataclass(frozen=True)
class PhaseSpec:
    """One ground-truth phase of the synthetic workload.

    ``duration``: seconds of the phase (scaled by the run's scale);
    ``functions``: (name, share-of-interval self-time, calls/second)
    triples — shares may sum to < 1, the rest is idle.
    """

    name: str
    duration: float
    functions: Tuple[Tuple[str, float, float], ...]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise AppError(f"phase {self.name!r} needs positive duration")
        total = sum(share for _n, share, _c in self.functions)
        if total > 1.0 + 1e-9:
            raise AppError(f"phase {self.name!r} self-time shares exceed 1.0")


#: Default script: a four-phase staircase with distinct dominant functions.
DEFAULT_SCRIPT: Tuple[PhaseSpec, ...] = (
    PhaseSpec("setup", 20.0, (("initialize", 0.9, 1.0),)),
    PhaseSpec("compute", 80.0, (("kernel", 0.85, 2.0), ("reduce", 0.1, 200.0))),
    PhaseSpec("exchange", 25.0, (("pack", 0.3, 5000.0), ("unpack", 0.25, 5000.0))),
    PhaseSpec("output", 15.0, (("write_results", 0.8, 0.5),)),
)


def script_to_spec(name: str, script: Sequence[PhaseSpec]) -> ScenarioSpec:
    """Lower a phase script to the declarative scenario IR.

    Kernels are deduplicated by function name in first-appearance order;
    each use carries its script call rate as a per-phase override, so
    the same function may run at different rates in different phases.
    """
    kernel_index: Dict[str, int] = {}
    kernels: List[KernelSpec] = []
    phases: List[ScenarioPhase] = []
    for phase in script:
        mix: List[KernelUse] = []
        for fname, share, calls in phase.functions:
            if fname not in kernel_index:
                kernel_index[fname] = len(kernels)
                kernels.append(KernelSpec(name=fname, calls_per_s=calls))
            mix.append(KernelUse(kernel=kernel_index[fname], share=share,
                                 calls_per_s=calls))
        phases.append(ScenarioPhase(name=phase.name, duration=phase.duration,
                                    mix=tuple(mix)))
    return ScenarioSpec(name=name, kernels=tuple(kernels),
                        phases=tuple(phases),
                        timeline=tuple(range(len(phases))), tier="scripted")


@register_app
class Synthetic(AppModel):
    """Scriptable workload with declared ground-truth phases."""

    name = "synthetic"
    kind = "synthetic"
    default_ranks = 1
    default_nodes = 1
    noise = NoiseModel(sigma=0.005)

    def __init__(self, script: Optional[Sequence[PhaseSpec]] = None) -> None:
        super().__init__()
        self.script: Tuple[PhaseSpec, ...] = (
            tuple(script) if script is not None else DEFAULT_SCRIPT
        )
        if not self.script:
            raise AppError("synthetic app needs at least one phase")

    # ------------------------------------------------------------------
    def ground_truth_phases(self) -> Tuple[PhaseSpec, ...]:
        return self.script

    def to_scenario_spec(self) -> ScenarioSpec:
        """The script expressed in the shared declarative IR."""
        return script_to_spec(self.name, self.script)

    def expected_functions(self) -> List[str]:
        return self.to_scenario_spec().expected_functions()

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return build_program(self.to_scenario_spec(), scale)

    @property
    def manual_sites(self) -> Sequence[Site]:
        # Ground truth: the dominant function of each phase, body-typed
        # (every phase's functions are called every interval).
        return tuple(Site(fn, InstType.BODY)
                     for fn in self.to_scenario_spec().dominant_functions())

    def live_run(self) -> Optional[LiveRun]:
        return None


def detection_accuracy(app, analysis) -> dict:
    """Score a detection result against an app's ground truth.

    Accepts anything carrying a scenario spec — :class:`Synthetic` (via
    ``to_scenario_spec``) or a :class:`~repro.apps.spec.ScenarioApp`
    (via ``.spec``).  Returns phase-count error and the recall of
    ground-truth dominant functions among the discovered sites.
    """
    if hasattr(app, "to_scenario_spec"):
        spec = app.to_scenario_spec()
    else:
        spec = app.spec
    dominants = set(spec.dominant_functions())
    discovered = {s.function for s in analysis.sites()}
    recall = (len(dominants & discovered) / len(dominants)
              if dominants else 1.0)
    return {
        "true_phases": spec.n_true_phases,
        "detected_phases": analysis.n_phases,
        "phase_count_error": analysis.n_phases - spec.n_true_phases,
        "dominant_recall": recall,
    }
