"""A configurable synthetic workload with known ground-truth phases.

None of the paper's applications comes with ground truth — the authors
judge discovery against their own manual instrumentation.  This app
closes that gap for testing and demos: you *declare* a phase script
(which functions run, for how long, with what call rates) and the
workload executes it, so detection accuracy can be measured exactly.

Not part of the paper's evaluation; registered as ``synthetic`` for
use in examples, tests, and methodology experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel
from repro.util.errors import AppError


@dataclass(frozen=True)
class PhaseSpec:
    """One ground-truth phase of the synthetic workload.

    ``duration``: seconds of the phase (scaled by the run's scale);
    ``functions``: (name, share-of-interval self-time, calls/second)
    triples — shares may sum to < 1, the rest is idle.
    """

    name: str
    duration: float
    functions: Tuple[Tuple[str, float, float], ...]

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise AppError(f"phase {self.name!r} needs positive duration")
        total = sum(share for _n, share, _c in self.functions)
        if total > 1.0 + 1e-9:
            raise AppError(f"phase {self.name!r} self-time shares exceed 1.0")


#: Default script: a four-phase staircase with distinct dominant functions.
DEFAULT_SCRIPT: Tuple[PhaseSpec, ...] = (
    PhaseSpec("setup", 20.0, (("initialize", 0.9, 1.0),)),
    PhaseSpec("compute", 80.0, (("kernel", 0.85, 2.0), ("reduce", 0.1, 200.0))),
    PhaseSpec("exchange", 25.0, (("pack", 0.3, 5000.0), ("unpack", 0.25, 5000.0))),
    PhaseSpec("output", 15.0, (("write_results", 0.8, 0.5),)),
)


@register_app
class Synthetic(AppModel):
    """Ground-truth phased workload (see module docstring)."""

    name = "synthetic"
    default_ranks = 1
    default_nodes = 1
    noise = NoiseModel(sigma=0.005)

    def __init__(self, script: Optional[Sequence[PhaseSpec]] = None) -> None:
        super().__init__()
        self.script: Tuple[PhaseSpec, ...] = (
            tuple(script) if script is not None else DEFAULT_SCRIPT
        )
        if not self.script:
            raise AppError("synthetic app needs at least one phase")

    # ------------------------------------------------------------------
    def ground_truth_phases(self) -> Tuple[PhaseSpec, ...]:
        return self.script

    def expected_functions(self) -> List[str]:
        return sorted({name for phase in self.script
                       for name, _s, _c in phase.functions})

    def build_main(self, scale: float = 1.0) -> SimFunction:
        script = self.script

        def _main(ctx):
            for phase in script:
                remaining = phase.duration * scale
                funcs = [(leaf(name), share, calls)
                         for name, share, calls in phase.functions]
                while remaining > 0:
                    step = min(1.0, remaining)
                    idle = step
                    for func, share, calls_per_s in funcs:
                        self_time = share * step * float(ctx.rng.normal(1.0, 0.03))
                        self_time = max(1e-6, self_time)
                        n_calls = max(1, round(calls_per_s * step))
                        ctx.call_batch(func, n_calls, self_time)
                        idle -= self_time
                    if idle > 0:
                        ctx.idle(idle)
                    remaining -= step

        return SimFunction("main", _main)

    @property
    def manual_sites(self) -> Sequence[Site]:
        # Ground truth: the dominant function of each phase, body-typed
        # (every phase's functions are called every interval).
        sites = []
        seen = set()
        for phase in self.script:
            dominant = max(phase.functions, key=lambda f: f[1])[0]
            if dominant not in seen:
                seen.add(dominant)
                sites.append(Site(dominant, InstType.BODY))
        return tuple(sites)

    def live_run(self) -> Optional[LiveRun]:
        return None


def detection_accuracy(app: Synthetic, analysis) -> dict:
    """Score a detection result against the app's ground truth.

    Returns phase-count error and the recall of ground-truth dominant
    functions among the discovered sites.
    """
    truth = app.ground_truth_phases()
    dominants = {max(p.functions, key=lambda f: f[1])[0] for p in truth}
    discovered = {s.function for s in analysis.sites()}
    recall = len(dominants & discovered) / len(dominants)
    return {
        "true_phases": len(truth),
        "detected_phases": analysis.n_phases,
        "phase_count_error": analysis.n_phases - len(truth),
        "dominant_recall": recall,
    }
