"""The application registry."""

from __future__ import annotations

from typing import Dict, List, Type

from repro.apps.base import AppModel
from repro.util.errors import AppError

_REGISTRY: Dict[str, Type[AppModel]] = {}


def register_app(cls: Type[AppModel]) -> Type[AppModel]:
    """Class decorator registering an :class:`AppModel` by its name."""
    if not cls.name:
        raise AppError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise AppError(f"duplicate app name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_app(name: str) -> AppModel:
    """Instantiate the registered app called ``name``."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise AppError(f"unknown app {name!r}; known: {sorted(_REGISTRY)}") from None


PAPER_APPS = ["graph500", "minife", "miniamr", "lammps", "gadget2"]


def app_names() -> List[str]:
    """Registered app names, the paper's five first."""
    ordered = [n for n in PAPER_APPS if n in _REGISTRY]
    ordered.extend(sorted(set(_REGISTRY) - set(ordered)))
    return ordered


def paper_app_names() -> List[str]:
    """Only the paper's five evaluation applications, in table order."""
    return [n for n in PAPER_APPS if n in _REGISTRY]
