"""The application registry: concrete apps plus parameterized factories.

Two kinds of entries live here:

- **concrete apps** — classes registered by name via the
  :func:`register_app` decorator (the paper's five models, the
  scriptable ``synthetic`` app);
- **factories** — lazy, parameterized families registered by prefix via
  :func:`register_factory`.  ``get_app("scenario:seed=42,tier=hard")``
  routes the part after the prefix to the family's builder, so hundreds
  of generated scenarios are addressable without hundreds of classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type

from repro.apps.base import AppModel
from repro.util.errors import AppError

_REGISTRY: Dict[str, Type[AppModel]] = {}


def _identity(obj: object) -> tuple:
    """Where a class/function was defined — equal under module re-import."""
    return (getattr(obj, "__module__", ""), getattr(obj, "__qualname__", ""))


def register_app(cls: Type[AppModel]) -> Type[AppModel]:
    """Class decorator registering an :class:`AppModel` by its name.

    Re-registering the *same* class (module reload under pytest,
    repeated ``importlib`` imports) is idempotent — the freshest class
    object wins.  Only a genuinely different class claiming an existing
    name raises.
    """
    if not cls.name:
        raise AppError(f"{cls.__name__} has no name")
    existing = _REGISTRY.get(cls.name)
    if existing is not None and _identity(existing) != _identity(cls):
        raise AppError(
            f"duplicate app name {cls.name!r}: "
            f"{existing.__module__}.{existing.__qualname__} vs "
            f"{cls.__module__}.{cls.__qualname__}")
    _REGISTRY[cls.name] = cls
    return cls


@dataclass(frozen=True)
class AppFactory:
    """A lazy, parameterized app family addressed as ``prefix:args``."""

    prefix: str
    build: Callable[[str], AppModel]
    kind: str
    description: str
    signature: str  # e.g. "seed=<int>,tier=<easy|medium|hard>"


_FACTORIES: Dict[str, AppFactory] = {}


def register_factory(prefix: str, build: Callable[[str], AppModel], *,
                     kind: str = "generated", description: str = "",
                     signature: str = "") -> None:
    """Register a parameterized family; idempotent like :func:`register_app`."""
    if not prefix or ":" in prefix:
        raise AppError(f"bad factory prefix {prefix!r}")
    existing = _FACTORIES.get(prefix)
    if existing is not None and _identity(existing.build) != _identity(build):
        raise AppError(
            f"duplicate factory prefix {prefix!r}: "
            f"{existing.build.__module__}.{existing.build.__qualname__} vs "
            f"{build.__module__}.{build.__qualname__}")
    _FACTORIES[prefix] = AppFactory(prefix=prefix, build=build, kind=kind,
                                    description=description,
                                    signature=signature)


def get_app(name: str) -> AppModel:
    """Instantiate a registered app, or build one from a factory.

    ``name`` is either a concrete registry key (``"graph500"``) or a
    factory address (``"scenario:seed=42,tier=hard"``).
    """
    cls = _REGISTRY.get(name)
    if cls is not None:
        return cls()
    prefix, sep, args = name.partition(":")
    if sep and prefix in _FACTORIES:
        return _FACTORIES[prefix].build(args)
    known = sorted(_REGISTRY) + [f"{p}:<{_FACTORIES[p].signature or 'args'}>"
                                 for p in sorted(_FACTORIES)]
    raise AppError(f"unknown app {name!r}; known: {known}")


def is_known_app(name: str) -> bool:
    """Whether :func:`get_app` could resolve ``name`` (without building it)."""
    if name in _REGISTRY:
        return True
    prefix, sep, _args = name.partition(":")
    return bool(sep) and prefix in _FACTORIES


PAPER_APPS = ["graph500", "minife", "miniamr", "lammps", "gadget2"]


def app_names() -> List[str]:
    """Registered concrete app names, the paper's five first."""
    ordered = [n for n in PAPER_APPS if n in _REGISTRY]
    ordered.extend(sorted(set(_REGISTRY) - set(ordered)))
    return ordered


def paper_app_names() -> List[str]:
    """Only the paper's five evaluation applications, in table order."""
    return [n for n in PAPER_APPS if n in _REGISTRY]


def describe_apps() -> List[Dict[str, str]]:
    """One row per registry entry: name, kind, one-line description.

    Concrete apps first (paper order), then factory families with their
    argument signature as the name.
    """
    rows: List[Dict[str, str]] = []
    for name in app_names():
        cls = _REGISTRY[name]
        doc = (cls.__doc__ or "").strip().splitlines()
        rows.append({
            "name": name,
            "kind": getattr(cls, "kind", "paper"),
            "description": doc[0] if doc else "",
        })
    for prefix in sorted(_FACTORIES):
        factory = _FACTORIES[prefix]
        rows.append({
            "name": f"{prefix}:{factory.signature or '<args>'}",
            "kind": factory.kind,
            "description": factory.description,
        })
    return rows
