"""Graph500 (mpi_simple, v2.1.4) workload model.

The benchmark builds a large Kronecker graph, then alternates
breadth-first searches with validation of each search result.  The
paper's run: 1 rank, 188 s uninstrumented, 4 discovered phases
(Table II): ``validate_bfs_result`` (loop), ``run_bfs`` (body and loop —
the clustering separates intervals where a search *begins* from intervals
where one is still running), and ``make_one_edge`` (body) for the
edge-generation phase.

Calibration notes (full scale):

- edge generation ~20 s of ``make_one_edge`` self-time across ~3.7e8
  batched calls — the mcount cost of that call volume is what drives the
  app's ~10 % IncProf overhead;
- ``generate_kronecker_range`` and ``make_graph_data_structure`` keep
  (nearly) no self-time of their own, which is why discovery surfaces the
  lower-level ``make_one_edge`` instead of the two manual init sites;
- searches are bimodal (short ~0.4 s / long ~1.6 s) so that intervals
  fully inside a long search (self-time, zero calls) form the *loop*
  cluster the paper reports.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, chunked_work, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel

# ----------------------------------------------------------------------
# simulated program
# ----------------------------------------------------------------------
make_one_edge = leaf("make_one_edge")
bitmap_set = leaf("bitmap_set")  # BFS utility: calls only, no sampled time

EDGE_GEN_BLOCKS = 20
EDGES_PER_BLOCK = 18_500_000
BFS_UTILITY_CALLS = 500_000


def _generate_kronecker_range(ctx, scale: float) -> None:
    blocks = max(1, round(EDGE_GEN_BLOCKS * scale))
    for _ in range(blocks):
        ctx.call_batch(make_one_edge, EDGES_PER_BLOCK, ctx.rng.uniform(0.92, 1.08))


def _make_graph_data_structure(ctx, scale: float) -> None:
    chunked_work(ctx, total=AppModel.jitter(ctx.rng, 1.05), chunk=0.1)


def _run_bfs(ctx, scale: float) -> None:
    # Bimodal search durations: some roots reach far into the graph.
    if ctx.rng.random() < 0.5:
        duration = AppModel.jitter(ctx.rng, 1.75, 0.08)
    else:
        duration = AppModel.jitter(ctx.rng, 0.4, 0.10)
    ctx.call_batch(bitmap_set, BFS_UTILITY_CALLS, 0.0)
    chunked_work(ctx, total=duration, chunk=0.05)  # level-synchronous steps


def _validate_bfs_result(ctx, scale: float) -> None:
    chunked_work(ctx, total=AppModel.jitter(ctx.rng, 1.8, 0.05), chunk=0.09)


generate_kronecker_range = SimFunction("generate_kronecker_range", _generate_kronecker_range)
make_graph_data_structure = SimFunction("make_graph_data_structure", _make_graph_data_structure)
run_bfs = SimFunction("run_bfs", _run_bfs)
validate_bfs_result = SimFunction("validate_bfs_result", _validate_bfs_result)

N_SEARCHES = 58


def _main(ctx, scale: float = 1.0) -> None:
    ctx.call(generate_kronecker_range, scale)
    ctx.call(make_graph_data_structure, scale)
    for _ in range(max(1, round(N_SEARCHES * scale))):
        ctx.call(run_bfs, scale)
        ctx.call(validate_bfs_result, scale)


# ----------------------------------------------------------------------
# live kernels (real computation, same function names)
# ----------------------------------------------------------------------
def live_make_one_edge(rng: np.random.Generator, scale_exp: int,
                       a: float, b: float, c: float) -> Tuple[int, int]:
    """One R-MAT edge by recursive quadrant descent."""
    u = v = 0
    for _ in range(scale_exp):
        r = rng.random()
        u <<= 1
        v <<= 1
        if r < a:
            pass
        elif r < a + b:
            v |= 1
        elif r < a + b + c:
            u |= 1
        else:
            u |= 1
            v |= 1
    return u, v


def live_generate_kronecker_range(scale_exp: int, edgefactor: int,
                                  seed: int = 1) -> np.ndarray:
    """Generate the R-MAT edge list (Graph500's Kronecker generator)."""
    rng = np.random.default_rng(seed)
    n_edges = edgefactor * (1 << scale_exp)
    edges = np.empty((n_edges, 2), dtype=np.int64)
    for i in range(n_edges):
        edges[i] = live_make_one_edge(rng, scale_exp, 0.57, 0.19, 0.19)
    return edges


def live_make_graph_data_structure(edges: np.ndarray, n_vertices: int):
    """Build a CSR adjacency structure (both directions)."""
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    indptr = np.zeros(n_vertices + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst


def live_run_bfs(indptr: np.ndarray, adjacency: np.ndarray, root: int) -> np.ndarray:
    """Level-synchronous BFS; returns the parent array (-1 = unreached)."""
    n = indptr.shape[0] - 1
    parent = np.full(n, -1, dtype=np.int64)
    parent[root] = root
    frontier = np.array([root], dtype=np.int64)
    while frontier.size:
        nexts = []
        for u in frontier:
            neigh = adjacency[indptr[u] : indptr[u + 1]]
            fresh = neigh[parent[neigh] == -1]
            if fresh.size:
                parent[fresh] = u
                nexts.append(np.unique(fresh))
        frontier = np.concatenate(nexts) if nexts else np.empty(0, dtype=np.int64)
    return parent


def live_validate_bfs_result(indptr: np.ndarray, adjacency: np.ndarray,
                             parent: np.ndarray, root: int) -> bool:
    """Graph500-style validation: tree consistency and level sanity."""
    n = parent.shape[0]
    if parent[root] != root:
        return False
    # Compute levels by chasing parents (bounded by n hops).
    level = np.full(n, -1, dtype=np.int64)
    level[root] = 0
    changed = True
    hops = 0
    while changed and hops <= n:
        changed = False
        hops += 1
        reached = (level == -1) & (parent >= 0)
        idx = np.nonzero(reached)[0]
        ready = idx[level[parent[idx]] >= 0]
        if ready.size:
            level[ready] = level[parent[ready]] + 1
            changed = True
    reached = parent >= 0
    if np.any(reached & (level < 0)):
        return False  # a cycle in the claimed tree
    # Every tree edge (v, parent[v]) must exist and span exactly one level.
    verts = np.nonzero(reached)[0]
    for v in verts:
        if v == root:
            continue
        p = parent[v]
        if level[v] != level[p] + 1:
            return False
        neigh = adjacency[indptr[v] : indptr[v + 1]]
        if not np.any(neigh == p):
            return False
    return True


def live_main(scale: float = 1.0):
    """Real Graph500-shaped run: generate, build, then search+validate."""
    scale_exp = max(8, int(8 + 3 * scale))
    edgefactor = 8
    n_searches = max(2, int(8 * scale))
    edges = live_generate_kronecker_range(scale_exp, edgefactor)
    n = 1 << scale_exp
    indptr, adjacency = live_make_graph_data_structure(edges, n)
    rng = np.random.default_rng(7)
    degrees = np.diff(indptr)
    roots = rng.choice(np.nonzero(degrees > 0)[0], size=n_searches)
    ok = True
    for root in roots:
        parent = live_run_bfs(indptr, adjacency, int(root))
        ok = live_validate_bfs_result(indptr, adjacency, parent, int(root)) and ok
    return ok


# ----------------------------------------------------------------------
@register_app
class Graph500(AppModel):
    """The Graph500 search benchmark (paper Section VI-A)."""

    name = "graph500"
    default_ranks = 1
    default_nodes = 1
    noise = NoiseModel(sigma=0.008)

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return SimFunction("main", lambda ctx: _main(ctx, scale))

    @property
    def manual_sites(self) -> Sequence[Site]:
        return (
            Site("make_graph_data_structure", InstType.BODY),
            Site("generate_kronecker_range", InstType.BODY),
            Site("run_bfs", InstType.BODY),
            Site("validate_bfs_result", InstType.BODY),
        )

    def live_run(self) -> Optional[LiveRun]:
        return LiveRun(
            main=live_main,
            function_names=(
                "live_generate_kronecker_range",
                "live_make_one_edge",
                "live_make_graph_data_structure",
                "live_run_bfs",
                "live_validate_bfs_result",
            ),
        )
