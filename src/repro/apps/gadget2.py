"""Gadget2 (cosmological N-body/SPH) workload model.

Gadget2 is timestep-driven: a loop over
``find_next_sync_point_and_drift`` → ``domain_decomposition`` →
``compute_accelerations`` → ``advance_and_find_timesteps``.  The four
main steps are *fast* relative to the 1 s interval, which the paper
flags as the hard case: clustering sees mixtures, detects 3 phases
(Table VI), and all three discovered sites are functions called
*indirectly* from ``compute_accelerations`` (~75 % of execution):

- ``force_treeevaluate_shortrange`` (body) split across two phases —
  hierarchical timestepping makes big synchronization steps tree-heavy
  and small steps tree-moderate;
- ``pm_setup_nonperiodic_kernel`` (body) for the particle-mesh epochs;
- ``force_update_node_recursive`` (body) for tree-node updates riding at
  the tail of PM epochs.

The manual sites (the four main loop calls) have essentially no sampled
self-time — their time lives in callees — so discovery cannot see them;
their heartbeat plots all overlap (Figure 6).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.apps.base import AppModel, LiveRun, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel

# ----------------------------------------------------------------------
# simulated program
# ----------------------------------------------------------------------
force_treeevaluate_shortrange = leaf("force_treeevaluate_shortrange")
pm_setup_nonperiodic_kernel = leaf("pm_setup_nonperiodic_kernel")
force_update_node_recursive = leaf("force_update_node_recursive")
drift_particle = leaf("drift_particle")

N_CYCLES = 17
TREE_CALLS_SYNC = 1_250_000
TREE_CALLS_SMALL = 600_000
DRIFT_CALLS = 550_000


def _find_next_sync(ctx) -> None:
    # The four main-loop functions spend their time in callees and
    # communication; their own sampled self-time rounds to zero — which is
    # exactly why discovery cannot surface them (paper Section VI-E) and
    # the manual sites differ from the discovered ones.
    ctx.call_batch(drift_particle, DRIFT_CALLS, 0.0)
    ctx.idle(0.004)


def _domain_decomposition(ctx) -> None:
    ctx.idle(0.012)


def _advance(ctx) -> None:
    ctx.idle(0.003)


find_next_sync_point_and_drift = SimFunction(
    "find_next_sync_point_and_drift", lambda ctx: _find_next_sync(ctx)
)
domain_decomposition = SimFunction("domain_decomposition", lambda ctx: _domain_decomposition(ctx))
advance_and_find_timesteps = SimFunction("advance_and_find_timesteps", lambda ctx: _advance(ctx))


def _compute_accelerations(ctx, kind: str) -> None:
    rng = ctx.rng
    if kind == "sync":
        # Big synchronization step: every particle active, deep tree walks.
        # Incremental node updates recurse but finish in microseconds —
        # below the sampling floor, so only the tree walk is "active".
        ctx.call_batch(force_treeevaluate_shortrange, TREE_CALLS_SYNC,
                       AppModel.jitter(rng, 1.12, 0.03))
        ctx.call_batch(force_update_node_recursive, 30_000, 0.0)
        ctx.idle(0.15)
    elif kind == "small":
        # Small hierarchical step: only a subset of particles integrates;
        # mostly latency-bound communication around a light tree pass.
        ctx.call_batch(force_treeevaluate_shortrange, TREE_CALLS_SMALL,
                       AppModel.jitter(rng, 0.35, 0.05))
        ctx.call_batch(force_update_node_recursive, 40_000, 0.0)
        ctx.idle(0.65)
    elif kind == "pm":
        # Long-range particle-mesh recomputation: the kernel is evaluated
        # per mesh point (very high call count), interleaved with
        # grid-transpose communication waits.
        for _ in range(7):
            ctx.call_batch(pm_setup_nonperiodic_kernel, 700_000,
                           AppModel.jitter(rng, 0.72, 0.04))
            ctx.idle(AppModel.jitter(rng, 0.28, 0.1))
    elif kind == "rebuild":
        # Full tree-node mass/center update after a PM sweep; drains past
        # the PM work so its tail intervals are PM-free.
        for _ in range(2):
            ctx.call_batch(force_update_node_recursive, 450_000,
                           AppModel.jitter(rng, 0.5, 0.05))
            ctx.idle(AppModel.jitter(rng, 0.25, 0.1))


compute_accelerations = SimFunction("compute_accelerations", _compute_accelerations)


def _timestep(ctx, kind: str) -> None:
    ctx.call(find_next_sync_point_and_drift)
    ctx.call(domain_decomposition)
    ctx.call(compute_accelerations, kind)
    ctx.call(advance_and_find_timesteps)


def _main(ctx, scale: float = 1.0) -> None:
    cycles = max(1, round(N_CYCLES * scale))
    rebuild_every = 2
    for cycle in range(cycles):
        # Hierarchical timestepping in regime blocks: a run of small
        # (subset) steps, a run of big synchronization steps, then a PM
        # epoch; occasionally the epoch is followed by a full tree-node
        # rebuild.
        for _ in range(6):
            _timestep(ctx, "small")
        for _ in range(9):
            _timestep(ctx, "sync")
        _timestep(ctx, "pm")
        if cycle % rebuild_every == rebuild_every - 1:
            _timestep(ctx, "rebuild")


# ----------------------------------------------------------------------
# live kernels: a real Barnes-Hut / particle-mesh gravity step
# ----------------------------------------------------------------------
class _Node:
    """One octree node (cube cell) for Barnes-Hut."""

    __slots__ = ("center", "half", "mass", "com", "children", "particle")

    def __init__(self, center: np.ndarray, half: float) -> None:
        self.center = center
        self.half = half
        self.mass = 0.0
        self.com = np.zeros(3)
        self.children: Dict[int, "_Node"] = {}
        self.particle = -1


def _octant(node: _Node, pos: np.ndarray) -> int:
    return int(pos[0] > node.center[0]) | (int(pos[1] > node.center[1]) << 1) | (
        int(pos[2] > node.center[2]) << 2
    )


def live_force_treebuild(positions: np.ndarray, masses: np.ndarray, box: float) -> _Node:
    """Insert all particles into an octree."""
    root = _Node(np.full(3, box / 2.0), box / 2.0)

    def insert(node: _Node, idx: int) -> None:
        if node.mass == 0.0 and not node.children:
            node.particle = idx
            node.mass = float(masses[idx])
            node.com = positions[idx].copy()
            return
        if node.particle >= 0:
            old = node.particle
            node.particle = -1
            _descend(node, old)
        _descend(node, idx)
        node.mass += float(masses[idx])

    def _descend(node: _Node, idx: int) -> None:
        oct_id = _octant(node, positions[idx])
        if oct_id not in node.children:
            offset = np.array(
                [
                    node.half / 2 * (1 if oct_id & 1 else -1),
                    node.half / 2 * (1 if oct_id & 2 else -1),
                    node.half / 2 * (1 if oct_id & 4 else -1),
                ]
            )
            node.children[oct_id] = _Node(node.center + offset, node.half / 2)
        insert(node.children[oct_id], idx)

    for idx in range(positions.shape[0]):
        insert(root, idx)
    return root


def live_force_update_node_recursive(node: _Node) -> float:
    """Recompute node masses and centers of mass bottom-up."""
    if node.particle >= 0 or not node.children:
        return node.mass
    total = 0.0
    com = np.zeros(3)
    for child in node.children.values():
        child_mass = live_force_update_node_recursive(child)
        total += child_mass
        com += child.com * child_mass
    node.mass = total
    node.com = com / total if total > 0 else node.center
    return total


def live_force_treeevaluate_shortrange(node: _Node, pos: np.ndarray,
                                       theta: float = 0.6, eps: float = 0.05) -> np.ndarray:
    """Barnes-Hut force on one particle (opening-angle criterion)."""
    force = np.zeros(3)
    stack = [node]
    while stack:
        current = stack.pop()
        if current.mass <= 0.0:
            continue
        delta = current.com - pos
        dist = float(np.sqrt(delta @ delta) + eps)
        if current.particle >= 0 or (2 * current.half) / dist < theta:
            if dist > eps:
                force += current.mass * delta / dist**3
        else:
            stack.extend(current.children.values())
    return force


def live_pm_setup_nonperiodic_kernel(positions: np.ndarray, masses: np.ndarray,
                                     box: float, grid: int = 16) -> np.ndarray:
    """Particle-mesh potential: CIC-ish deposit + FFT Green's function."""
    density = np.zeros((grid, grid, grid))
    cells = np.clip((positions / box * grid).astype(int), 0, grid - 1)
    np.add.at(density, (cells[:, 0], cells[:, 1], cells[:, 2]), masses)
    rho_k = np.fft.rfftn(density)
    k = np.fft.fftfreq(grid) * 2 * np.pi * grid / box
    kr = np.fft.rfftfreq(grid) * 2 * np.pi * grid / box
    k2 = k[:, None, None] ** 2 + k[None, :, None] ** 2 + kr[None, None, :] ** 2
    k2[0, 0, 0] = 1.0
    phi_k = -4 * np.pi * rho_k / k2
    phi_k[0, 0, 0] = 0.0
    return np.fft.irfftn(phi_k, s=(grid, grid, grid), axes=(0, 1, 2))


def live_main(scale: float = 1.0):
    """Real N-body steps: tree build/update, BH forces, PM potential."""
    n = max(64, int(300 * scale))
    box = 1.0
    rng = np.random.default_rng(5)
    positions = rng.uniform(0.05, 0.95, size=(n, 3))
    velocities = np.zeros((n, 3))
    masses = np.full(n, 1.0 / n)
    dt = 1e-3
    steps = max(2, int(6 * scale))
    potentials = []
    for step in range(steps):
        root = live_force_treebuild(positions, masses, box)
        live_force_update_node_recursive(root)
        forces = np.array(
            [live_force_treeevaluate_shortrange(root, positions[i]) for i in range(n)]
        )
        if step % 2 == 0:
            phi = live_pm_setup_nonperiodic_kernel(positions, masses, box)
            potentials.append(float(phi.min()))
        velocities += dt * forces
        positions = np.clip(positions + dt * velocities, 0.0, 1.0 - 1e-9)
    return potentials


# ----------------------------------------------------------------------
@register_app
class Gadget2(AppModel):
    """Gadget2 cosmological simulation (paper Section VI-E)."""

    name = "gadget2"
    default_ranks = 16
    default_nodes = 2
    noise = NoiseModel(sigma=0.008)

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return SimFunction("main", lambda ctx: _main(ctx, scale))

    @property
    def manual_sites(self) -> Sequence[Site]:
        return (
            Site("find_next_sync_point_and_drift", InstType.BODY),
            Site("domain_decomposition", InstType.BODY),
            Site("compute_accelerations", InstType.BODY),
            Site("advance_and_find_timesteps", InstType.BODY),
        )

    def live_run(self) -> Optional[LiveRun]:
        return LiveRun(
            main=live_main,
            function_names=(
                "live_force_treebuild",
                "live_force_update_node_recursive",
                "live_force_treeevaluate_shortrange",
                "live_pm_setup_nonperiodic_kernel",
            ),
        )
