"""MiniFE (Mantevo implicit finite-element proxy) workload model.

MiniFE's documented kernels: (1) generate the matrix/vector mesh
structure, (2) assemble the mesh into sparse matrices (an element loop
summing symmetric element matrices), (3) a conjugate-gradient solve, and
(4) vector operations.  The paper's run: 16 ranks / 2 nodes, 617 s,
5 discovered phases (Table III) and — at ``-O3`` — a consistently
*negative* IncProf overhead (-6.2 %), which the authors attribute to
compiler/instrumentation interaction; we model it as a systematic build
bias.

Calibration (full scale, seconds of per-function self-time):

====================  ======  ==========================================
generate_matrix_structure  4.5   one call, start of run (loop site)
init_matrix              62.0   one long call (loop site)
sum_in_symm_elem_matrix 120.0   batched from perform_element_loop (body)
impose_dirichlet         27.0   one call (loop)
make_local_matrix         4.0   one call (loop)
cg_solve                400.0   one call; two operating regimes so the
                                clustering splits it (paper phases 1 & 4):
                                compute-dominated iterations, then
                                vector-op/communication-heavy iterations
                                where ``waxpby`` self-time appears
====================  ======  ==========================================
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import AppModel, LiveRun, chunked_work, leaf
from repro.apps.registry import register_app
from repro.core.model import InstType, Site
from repro.simulate.engine import SimFunction
from repro.simulate.noise import NoiseModel

# ----------------------------------------------------------------------
# simulated program
# ----------------------------------------------------------------------
sum_in_symm_elem_matrix = leaf("sum_in_symm_elem_matrix")
waxpby = leaf("waxpby")
dot_product = leaf("dot")

ELEMENTS_PER_CHUNK = 400_000


def _generate_matrix_structure(ctx) -> None:
    # Structure generation is allocation-heavy: page faults and kernel
    # time are invisible to the sampler (unattributed), diluting self-time
    # the same way init_matrix's is — which is why the two cluster
    # together in the paper's phase 2.
    for _ in range(5):
        ctx.work(AppModel.jitter(ctx.rng, 0.78, 0.04))
        ctx.loop_tick()
        ctx.idle(AppModel.jitter(ctx.rng, 0.22, 0.10))


def _init_matrix(ctx, scale: float) -> None:
    # Memory-bound initialization: ~38% of wall time is page-fault /
    # first-touch kernel time the PC sampler cannot attribute.
    chunks = max(1, round(62 * scale))
    for _ in range(chunks):
        ctx.work(AppModel.jitter(ctx.rng, 0.62, 0.04))
        ctx.loop_tick()
        ctx.idle(AppModel.jitter(ctx.rng, 0.38, 0.08))


def _perform_element_loop(ctx, scale: float) -> None:
    # Assembly: many tiny element-matrix summations; the outer loop itself
    # has no sampled self-time, which is why discovery selects the callee.
    chunks = max(1, round(120 * scale))
    for _ in range(chunks):
        ctx.call_batch(sum_in_symm_elem_matrix, ELEMENTS_PER_CHUNK,
                       ctx.rng.uniform(0.94, 1.06))
        ctx.loop_tick()


def _impose_dirichlet(ctx, scale: float) -> None:
    chunked_work(ctx, total=AppModel.jitter(ctx.rng, 27.0 * scale, 0.03), chunk=0.3)


def _make_local_matrix(ctx) -> None:
    # Local-operator setup interleaves vector preparation (waxpby shows
    # some self-time here), so these intervals sit nearer the solver's
    # vector-op regime — the paper's phase 4 pairs make_local_matrix with
    # the second cg_solve cluster.
    for _ in range(9):
        ctx.work(AppModel.jitter(ctx.rng, 0.55, 0.05))
        ctx.loop_tick()
        ctx.call_batch(waxpby, 40, 0.3)
        ctx.idle(0.12)


def _cg_solve(ctx, scale: float) -> None:
    # Regime A: compute-dominated CG iterations (paper phase 1).
    for _ in range(max(1, round(1080 * scale))):
        ctx.work(AppModel.jitter(ctx.rng, 0.2325, 0.05))
        ctx.call_batch(waxpby, 4, 0.0025)
        ctx.call_batch(dot_product, 200, 0.0)
        ctx.loop_tick()
    # Regime B: vector-op and halo-exchange heavy iterations (phase 4):
    # waxpby self-time becomes visible, dot reductions block on MPI.
    for _ in range(max(1, round(500 * scale))):
        ctx.work(AppModel.jitter(ctx.rng, 0.13, 0.05))
        ctx.call_batch(waxpby, 4, 0.09)
        ctx.call_batch(dot_product, 200, 0.0075)
        ctx.idle(0.0225)
        ctx.loop_tick()


generate_matrix_structure = SimFunction("generate_matrix_structure", lambda ctx: _generate_matrix_structure(ctx))
init_matrix = SimFunction("init_matrix", _init_matrix)
perform_element_loop = SimFunction("perform_element_loop", _perform_element_loop)
impose_dirichlet = SimFunction("impose_dirichlet", _impose_dirichlet)
make_local_matrix = SimFunction("make_local_matrix", lambda ctx: _make_local_matrix(ctx))
cg_solve = SimFunction("cg_solve", _cg_solve)


def _main(ctx, scale: float = 1.0) -> None:
    ctx.call(generate_matrix_structure)
    ctx.call(init_matrix, scale)
    ctx.call(perform_element_loop, scale)
    ctx.call(impose_dirichlet, scale)
    ctx.call(make_local_matrix)
    ctx.call(cg_solve, scale)


# ----------------------------------------------------------------------
# live kernels: a real finite-element-flavoured CG solve
# ----------------------------------------------------------------------
def live_generate_matrix_structure(nx: int, ny: int, nz: int) -> Tuple[np.ndarray, np.ndarray]:
    """7-point stencil sparsity structure on an nx*ny*nz brick."""
    n = nx * ny * nz
    idx = np.arange(n)
    x = idx % nx
    y = (idx // nx) % ny
    z = idx // (nx * ny)
    rows, cols = [idx], [idx]
    for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
        nx_, ny_, nz_ = x + dx, y + dy, z + dz
        ok = (0 <= nx_) & (nx_ < nx) & (0 <= ny_) & (ny_ < ny) & (0 <= nz_) & (nz_ < nz)
        rows.append(idx[ok])
        cols.append((nx_ + ny_ * nx + nz_ * nx * ny)[ok])
    return np.concatenate(rows), np.concatenate(cols)


def live_init_matrix(rows: np.ndarray, cols: np.ndarray, n: int):
    """CSR arrays with zero values, plus the row pointer."""
    order = np.lexsort((cols, rows))
    rows, cols = rows[order], cols[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, cols, np.zeros(rows.shape[0])


def live_sum_in_symm_elem_matrix(values: np.ndarray, indptr: np.ndarray,
                                 cols: np.ndarray, row: int) -> None:
    """Assemble one row: -1 off-diagonal, degree on the diagonal."""
    lo, hi = indptr[row], indptr[row + 1]
    span = cols[lo:hi]
    contrib = np.where(span == row, float(hi - lo - 1), -1.0)
    values[lo:hi] += contrib


def live_perform_element_loop(indptr: np.ndarray, cols: np.ndarray,
                              values: np.ndarray, n: int) -> None:
    for row in range(n):
        live_sum_in_symm_elem_matrix(values, indptr, cols, row)


def live_impose_dirichlet(indptr: np.ndarray, cols: np.ndarray, values: np.ndarray,
                          b: np.ndarray, boundary: np.ndarray) -> None:
    """Pin boundary rows to identity and zero the RHS there."""
    for row in boundary:
        lo, hi = indptr[row], indptr[row + 1]
        span = cols[lo:hi]
        values[lo:hi] = np.where(span == row, 1.0, 0.0)
        b[row] = 0.0


def live_make_local_matrix(indptr, cols, values):
    """Finalize the operator as a closure performing CSR matvec."""
    def matvec(x: np.ndarray) -> np.ndarray:
        products = values * x[cols]
        out = np.add.reduceat(products, indptr[:-1])
        out[indptr[:-1] == indptr[1:]] = 0.0
        return out

    return matvec


def live_waxpby(alpha: float, x: np.ndarray, beta: float, y: np.ndarray) -> np.ndarray:
    return alpha * x + beta * y


def live_dot(x: np.ndarray, y: np.ndarray) -> float:
    return float(x @ y)


def live_cg_solve(matvec, b: np.ndarray, max_iter: int = 200, tol: float = 1e-8):
    """Plain conjugate gradients using the waxpby/dot kernels."""
    x = np.zeros_like(b)
    r = b.copy()
    p = r.copy()
    rr = live_dot(r, r)
    for iteration in range(max_iter):
        if rr <= tol * tol:
            break
        ap = matvec(p)
        alpha = rr / max(live_dot(p, ap), 1e-300)
        x = live_waxpby(1.0, x, alpha, p)
        r = live_waxpby(1.0, r, -alpha, ap)
        rr_new = live_dot(r, r)
        p = live_waxpby(1.0, r, rr_new / max(rr, 1e-300), p)
        rr = rr_new
    return x, iteration, np.sqrt(rr)


def live_pcg_solve(matvec, b: np.ndarray, diag: np.ndarray,
                   max_iter: int = 200, tol: float = 1e-8):
    """Jacobi-preconditioned conjugate gradients.

    MiniFE ships matrix-free Jacobi preconditioning as an option; the
    preconditioner is a pointwise divide by the diagonal, and for the
    assembled Laplacian it cuts the iteration count noticeably.
    """
    inv_diag = np.where(np.abs(diag) > 0, 1.0 / diag, 1.0)
    x = np.zeros_like(b)
    r = b.copy()
    z = inv_diag * r
    p = z.copy()
    rz = live_dot(r, z)
    residual_sq = live_dot(r, r)
    for iteration in range(max_iter):
        if residual_sq <= tol * tol:
            break
        ap = matvec(p)
        alpha = rz / max(live_dot(p, ap), 1e-300)
        x = live_waxpby(1.0, x, alpha, p)
        r = live_waxpby(1.0, r, -alpha, ap)
        z = inv_diag * r
        rz_new = live_dot(r, z)
        p = live_waxpby(1.0, z, rz_new / max(rz, 1e-300), p)
        rz = rz_new
        residual_sq = live_dot(r, r)
    return x, iteration, np.sqrt(residual_sq)


def extract_diagonal(indptr: np.ndarray, cols: np.ndarray,
                     values: np.ndarray, n: int) -> np.ndarray:
    """The operator's diagonal, for Jacobi preconditioning."""
    diag = np.zeros(n)
    rows = np.repeat(np.arange(n), np.diff(indptr))
    mask = cols == rows
    np.add.at(diag, rows[mask], values[mask])
    return diag


def live_main(scale: float = 1.0):
    """Real mini finite-element run: structure, assemble, pin, solve."""
    side = max(6, int(10 * scale))
    nx = ny = nz = side
    n = nx * ny * nz
    rows, cols_raw = live_generate_matrix_structure(nx, ny, nz)
    indptr, cols, values = live_init_matrix(rows, cols_raw, n)
    live_perform_element_loop(indptr, cols, values, n)
    b = np.ones(n)
    boundary = np.nonzero((np.arange(n) % nx == 0))[0]
    live_impose_dirichlet(indptr, cols, values, b, boundary)
    # Shift to make the pinned operator positive definite.
    diag_mask = cols == np.repeat(np.arange(n), np.diff(indptr))
    values[diag_mask] += 1.0
    matvec = live_make_local_matrix(indptr, cols, values)
    x, iters, residual = live_cg_solve(matvec, b, max_iter=50 * side)
    return x, iters, residual


# ----------------------------------------------------------------------
@register_app
class MiniFE(AppModel):
    """The MiniFE implicit finite-element proxy (paper Section VI-B)."""

    name = "minife"
    default_ranks = 16
    default_nodes = 2
    noise = NoiseModel(sigma=0.008)
    # The consistently negative -pg/-O3 overhead the paper reports.
    incprof_build_bias = -0.076

    def build_main(self, scale: float = 1.0) -> SimFunction:
        return SimFunction("main", lambda ctx: _main(ctx, scale))

    @property
    def manual_sites(self) -> Sequence[Site]:
        return (
            Site("cg_solve", InstType.LOOP),
            Site("perform_element_loop", InstType.LOOP),
            Site("init_matrix", InstType.LOOP),
            Site("impose_dirichlet", InstType.LOOP),
            Site("make_local_matrix", InstType.LOOP),
        )

    def live_run(self) -> Optional[LiveRun]:
        return LiveRun(
            main=live_main,
            function_names=(
                "live_generate_matrix_structure",
                "live_init_matrix",
                "live_perform_element_loop",
                "live_sum_in_symm_elem_matrix",
                "live_impose_dirichlet",
                "live_make_local_matrix",
                "live_cg_solve",
                "live_waxpby",
                "live_dot",
            ),
        )
