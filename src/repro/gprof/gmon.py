"""The gmon profile snapshot and its binary serialization.

:class:`GmonData` is the cumulative state a gprof runtime holds for one
process: a sampling histogram (sample-tick counts per function) and call
arcs (``(caller, callee) -> count``).  IncProf periodically serializes this
state to per-interval files; we define a compact versioned binary format
(magic ``IGMON``) with a string table, histogram records, and arc records.

The format is self-contained and round-trips exactly; corrupt or truncated
files raise :class:`~repro.util.errors.FormatError`.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Dict, List, Tuple, Union

from repro.util.errors import FormatError, ValidationError

try:  # numpy accelerates bulk record decoding; the format does not need it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy ships with the toolchain
    _np = None

MAGIC = b"IGMON"
VERSION = 1

_HEADER = struct.Struct("<5sHddi")  # magic, version, sample_period, timestamp, rank
_U32 = struct.Struct("<I")
_HIST_REC = struct.Struct("<IQ")  # name index, tick count
_ARC_REC = struct.Struct("<IIQ")  # caller index, callee index, count

if _np is not None:
    # Packed-record views of the fixed-size sections ("<" structs carry
    # no padding, so explicit offsets reproduce the wire layout exactly).
    _HIST_DTYPE = _np.dtype({"names": ["i", "t"], "formats": ["<u4", "<u8"],
                             "offsets": [0, 4], "itemsize": _HIST_REC.size})
    _ARC_DTYPE = _np.dtype({"names": ["s", "d", "c"],
                            "formats": ["<u4", "<u4", "<u8"],
                            "offsets": [0, 4, 8], "itemsize": _ARC_REC.size})


@dataclass
class GmonData:
    """Cumulative gprof-style profile state for one process.

    Attributes
    ----------
    sample_period:
        Seconds represented by one histogram tick (gprof uses 0.01 s).
    hist:
        Function name -> cumulative sample-tick count.
    arcs:
        ``(caller, callee)`` -> cumulative call count.
    timestamp:
        Time (virtual or wall) at which this snapshot was taken.
    rank:
        Originating MPI rank.
    """

    sample_period: float = 0.01
    hist: Dict[str, int] = field(default_factory=dict)
    arcs: Dict[Tuple[str, str], int] = field(default_factory=dict)
    timestamp: float = 0.0
    rank: int = 0

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValidationError("sample_period must be positive")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def add_ticks(self, func: str, ticks: int) -> None:
        """Add histogram ticks for ``func``."""
        if ticks < 0:
            raise ValidationError("tick count must be non-negative")
        if ticks:
            self.hist[func] = self.hist.get(func, 0) + ticks

    def add_arc(self, caller: str, callee: str, count: int = 1) -> None:
        """Record ``count`` calls along the arc ``caller -> callee``."""
        if count < 0:
            raise ValidationError("arc count must be non-negative")
        if count:
            key = (caller, callee)
            self.arcs[key] = self.arcs.get(key, 0) + count

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def self_seconds(self, func: str) -> float:
        """Cumulative sampled self-time of ``func`` in seconds."""
        return self.hist.get(func, 0) * self.sample_period

    def total_seconds(self) -> float:
        """Total sampled time across all functions."""
        return sum(self.hist.values()) * self.sample_period

    def calls_into(self, func: str) -> int:
        """Total call count into ``func`` summed over all callers."""
        return sum(c for (_caller, callee), c in self.arcs.items() if callee == func)

    def functions(self) -> List[str]:
        """All function names present in the histogram or arcs."""
        names = set(self.hist)
        for caller, callee in self.arcs:
            names.add(caller)
            names.add(callee)
        return sorted(names)

    def copy(self) -> "GmonData":
        """Deep copy (snapshots must be independent of live state)."""
        return GmonData(
            sample_period=self.sample_period,
            hist=dict(self.hist),
            arcs=dict(self.arcs),
            timestamp=self.timestamp,
            rank=self.rank,
        )

    def subtract(self, earlier: "GmonData") -> "GmonData":
        """Return this snapshot minus an ``earlier`` one (interval profile).

        Counts are clamped at zero: gprof histograms are monotone in
        principle, but defensive clamping matches what the paper's
        differencing step must do with any sampling artifacts.
        """
        if abs(earlier.sample_period - self.sample_period) > 1e-12:
            raise ValidationError("cannot subtract snapshots with different sample periods")
        out = GmonData(sample_period=self.sample_period, timestamp=self.timestamp, rank=self.rank)
        for func, ticks in self.hist.items():
            delta = ticks - earlier.hist.get(func, 0)
            if delta > 0:
                out.hist[func] = delta
        for key, count in self.arcs.items():
            delta = count - earlier.arcs.get(key, 0)
            if delta > 0:
                out.arcs[key] = delta
        return out


# ----------------------------------------------------------------------
# binary serialization
# ----------------------------------------------------------------------
def _read_exact(stream: BinaryIO, n: int) -> bytes:
    data = stream.read(n)
    if len(data) != n:
        raise FormatError(f"truncated gmon data: wanted {n} bytes, got {len(data)}")
    return data


def write_gmon(data: GmonData, target: Union[str, Path, BinaryIO]) -> None:
    """Serialize ``data`` to a path or binary stream."""
    if isinstance(target, (str, Path)):
        with open(target, "wb") as fh:
            write_gmon(data, fh)
        return
    stream = target
    parts: List[bytes] = [
        _HEADER.pack(MAGIC, VERSION, data.sample_period, data.timestamp, data.rank)
    ]

    names = sorted(set(data.hist) | {n for arc in data.arcs for n in arc})
    index = {name: i for i, name in enumerate(names)}
    parts.append(_U32.pack(len(names)))
    for name in names:
        encoded = name.encode("utf-8")
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)

    # Fixed-size sections are packed in one struct call each; with "<"
    # there is no alignment padding, so the bytes are identical to a
    # record-at-a-time stream (the IGMON format is unchanged).
    hist = data.hist
    flat_hist: List[int] = []
    for name in sorted(hist):
        flat_hist.append(index[name])
        flat_hist.append(hist[name])
    parts.append(_U32.pack(len(hist)))
    parts.append(struct.pack("<" + "IQ" * len(hist), *flat_hist))

    arcs = data.arcs
    flat_arcs: List[int] = []
    for caller, callee in sorted(arcs):
        flat_arcs.append(index[caller])
        flat_arcs.append(index[callee])
        flat_arcs.append(arcs[(caller, callee)])
    parts.append(_U32.pack(len(arcs)))
    parts.append(struct.pack("<" + "IIQ" * len(arcs), *flat_arcs))

    stream.write(b"".join(parts))


def read_gmon(source: Union[str, Path, BinaryIO]) -> GmonData:
    """Deserialize a gmon snapshot from a path or binary stream."""
    if isinstance(source, (str, Path)):
        with open(source, "rb") as fh:
            return read_gmon(fh)
    stream = source
    magic, version, period, timestamp, rank = _HEADER.unpack(_read_exact(stream, _HEADER.size))
    if magic != MAGIC:
        raise FormatError(f"bad gmon magic {magic!r}")
    if version != VERSION:
        raise FormatError(f"unsupported gmon version {version}")

    (n_names,) = _U32.unpack(_read_exact(stream, 4))
    names: List[str] = []
    for _ in range(n_names):
        (length,) = _U32.unpack(_read_exact(stream, 4))
        names.append(_read_exact(stream, length).decode("utf-8"))

    data = GmonData(sample_period=period, timestamp=timestamp, rank=rank)

    (n_hist,) = _U32.unpack(_read_exact(stream, 4))
    hist_buf = _read_exact(stream, n_hist * _HIST_REC.size)
    for idx, ticks in _HIST_REC.iter_unpack(hist_buf):
        if idx >= len(names):
            raise FormatError(f"histogram name index {idx} out of range")
        data.hist[names[idx]] = ticks

    (n_arcs,) = _U32.unpack(_read_exact(stream, 4))
    arc_buf = _read_exact(stream, n_arcs * _ARC_REC.size)
    for src, dst, count in _ARC_REC.iter_unpack(arc_buf):
        if src >= len(names) or dst >= len(names):
            raise FormatError("arc name index out of range")
        data.arcs[(names[src], names[dst])] = count

    return data


class GmonBlob:
    """A still-serialized gmon snapshot: raw bytes plus parse-on-demand.

    The service wire path admits binary snapshots without paying the
    parse on the connection's reader thread; whichever worker classifies
    the interval calls :meth:`load` (cached) off the critical path.  A
    blob also rides *encoding* untouched — both codecs emit its bytes
    directly, so a publisher holding pre-serialized gmon files never
    re-serializes, and a router relaying a snapshot never parses it.

    ``raw`` may be any buffer (``memoryview`` included); a corrupt blob
    raises :class:`FormatError` from :meth:`load`, not from construction.
    """

    __slots__ = ("raw", "_data")

    def __init__(self, raw) -> None:
        self.raw = raw
        self._data: "GmonData | None" = None

    def load(self) -> GmonData:
        if self._data is None:
            self._data = loads_gmon(self.raw)
        return self._data


def dumps_gmon(data: GmonData) -> bytes:
    """Serialize to bytes."""
    buf = io.BytesIO()
    write_gmon(data, buf)
    return buf.getvalue()


#: Decoded string tables keyed by their raw section bytes; cleared
#: wholesale at the cap (tables are small and the set of distinct
#: function universes a process sees is, too).
_NAMES_CACHE: Dict[bytes, List[str]] = {}
_NAMES_CACHE_MAX = 256


def loads_gmon(blob) -> GmonData:
    """Deserialize from bytes or any buffer (``memoryview`` included).

    Parses in place with ``unpack_from`` offsets — no stream object, no
    intermediate copies — so the service wire path can hand in a
    ``memoryview`` carved straight out of a received frame.  Same format,
    same :class:`FormatError` guarantees as :func:`read_gmon`.
    """
    buf = memoryview(blob)
    total = buf.nbytes

    def need(offset: int, n: int) -> None:
        if offset + n > total:
            raise FormatError(f"truncated gmon data: wanted {n} bytes, "
                              f"got {max(0, total - offset)}")

    need(0, _HEADER.size)
    magic, version, period, timestamp, rank = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise FormatError(f"bad gmon magic {bytes(magic)!r}")
    if version != VERSION:
        raise FormatError(f"unsupported gmon version {version}")
    off = _HEADER.size

    need(off, 4)
    (n_names,) = _U32.unpack_from(buf, off)
    off += 4
    # A stream's snapshots carry the same function set interval after
    # interval, so the string table's raw bytes repeat verbatim; cache
    # the decoded table keyed by those bytes and the per-interval parse
    # skips every UTF-8 decode.  First pass walks lengths only.
    names_start = off
    for _ in range(n_names):
        need(off, 4)
        (length,) = _U32.unpack_from(buf, off)
        off += 4
        need(off, length)
        off += length
    section = bytes(buf[names_start:off])
    names = _NAMES_CACHE.get(section)
    if names is None:
        names = []
        pos = 0
        for _ in range(n_names):
            (length,) = _U32.unpack_from(section, pos)
            pos += 4
            names.append(section[pos:pos + length].decode("utf-8"))
            pos += length
        if len(_NAMES_CACHE) >= _NAMES_CACHE_MAX:
            _NAMES_CACHE.clear()
        _NAMES_CACHE[section] = names

    try:
        data = GmonData(sample_period=period, timestamp=timestamp, rank=rank)
    except ValidationError as exc:
        raise FormatError(f"bad gmon header: {exc}") from exc

    need(off, 4)
    (n_hist,) = _U32.unpack_from(buf, off)
    off += 4
    need(off, n_hist * _HIST_REC.size)
    if _np is not None and n_hist:
        # One vectorized view over the whole section instead of ~n_hist
        # iter_unpack tuples; this parse sits on the service's classify
        # path, where it is the single largest per-interval CPU item.
        recs = _np.frombuffer(buf, dtype=_HIST_DTYPE, count=n_hist, offset=off)
        idx = recs["i"]
        if int(idx.max()) >= len(names):
            bad = int(idx[idx >= len(names)][0])
            raise FormatError(f"histogram name index {bad} out of range")
        data.hist = dict(zip((names[i] for i in idx.tolist()),
                             recs["t"].tolist()))
    else:
        for idx, ticks in _HIST_REC.iter_unpack(buf[off:off + n_hist * _HIST_REC.size]):
            if idx >= len(names):
                raise FormatError(f"histogram name index {idx} out of range")
            data.hist[names[idx]] = ticks
    off += n_hist * _HIST_REC.size

    need(off, 4)
    (n_arcs,) = _U32.unpack_from(buf, off)
    off += 4
    need(off, n_arcs * _ARC_REC.size)
    if _np is not None and n_arcs:
        recs = _np.frombuffer(buf, dtype=_ARC_DTYPE, count=n_arcs, offset=off)
        src_i, dst_i = recs["s"], recs["d"]
        if int(src_i.max()) >= len(names) or int(dst_i.max()) >= len(names):
            raise FormatError("arc name index out of range")
        data.arcs = dict(zip(zip((names[i] for i in src_i.tolist()),
                                 (names[i] for i in dst_i.tolist())),
                             recs["c"].tolist()))
    else:
        for src, dst, count in _ARC_REC.iter_unpack(buf[off:off + n_arcs * _ARC_REC.size]):
            if src >= len(names) or dst >= len(names):
                raise FormatError("arc name index out of range")
            data.arcs[(names[src], names[dst])] = count

    return data
