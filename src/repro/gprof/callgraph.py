"""The gprof call-graph profile.

gprof's second table attributes each function's time to its callers by
propagating child time up call arcs in proportion to call counts.  The
paper's published analysis uses only the flat profile, but explicitly
mentions ongoing work with the call-graph data; we implement it both for
fidelity of the substrate and for the call-graph ablation bench.

Cycles are handled the way gprof does conceptually: strongly connected
components are collapsed and treated as a unit for propagation (we use
networkx's condensation for this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import networkx as nx

from repro.gprof.gmon import GmonData
from repro.simulate.engine import SPONTANEOUS


@dataclass(frozen=True)
class ArcShare:
    """A caller's or callee's share of a function's propagated time."""

    name: str
    calls: int
    self_seconds: float
    children_seconds: float


@dataclass
class CallGraphEntry:
    """One primary line of the call-graph profile."""

    name: str
    index: int
    self_seconds: float
    children_seconds: float
    calls: int
    parents: List[ArcShare] = field(default_factory=list)
    children: List[ArcShare] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.self_seconds + self.children_seconds


class CallGraphProfile:
    """Call-graph profile computed from gmon arcs and histogram."""

    def __init__(self, entries: Dict[str, CallGraphEntry], total_seconds: float) -> None:
        self.entries = entries
        self.total_seconds = total_seconds

    @classmethod
    def from_gmon(cls, data: GmonData) -> "CallGraphProfile":
        graph = nx.DiGraph()
        for name in data.functions():
            if name != SPONTANEOUS:
                graph.add_node(name)
        for (caller, callee), count in data.arcs.items():
            if caller == SPONTANEOUS or caller == callee:
                continue
            graph.add_edge(caller, callee, calls=count)

        # Propagate total time bottom-up over the condensation (gprof's
        # "time propagation" step): total(f) = self(f) + sum over callees
        # of total(callee) * (calls f->callee / total calls into callee).
        cond = nx.condensation(graph)
        totals: Dict[str, float] = {}
        calls_in: Dict[str, int] = {}
        for (caller, callee), count in data.arcs.items():
            if caller == callee:
                continue
            calls_in[callee] = calls_in.get(callee, 0) + count

        for scc_id in reversed(list(nx.topological_sort(cond))):
            members = cond.nodes[scc_id]["members"]
            scc_self = sum(data.self_seconds(m) for m in members)
            scc_children = 0.0
            for member in members:
                for _caller, callee, attrs in graph.out_edges(member, data=True):
                    if callee in members:
                        continue  # intra-cycle arcs don't propagate
                    share = attrs["calls"] / max(1, calls_in.get(callee, attrs["calls"]))
                    scc_children += totals.get(callee, data.self_seconds(callee)) * share
            scc_total = scc_self + scc_children
            for member in members:
                # Within a cycle gprof reports the cycle total on each member.
                totals[member] = scc_total if len(members) > 1 else (
                    data.self_seconds(member) + scc_children
                )

        entries: Dict[str, CallGraphEntry] = {}
        order = sorted(totals, key=lambda n: (-totals[n], n))
        for idx, name in enumerate(order, start=1):
            self_s = data.self_seconds(name)
            entry = CallGraphEntry(
                name=name,
                index=idx,
                self_seconds=self_s,
                children_seconds=max(0.0, totals[name] - self_s),
                calls=calls_in.get(name, 0),
            )
            entries[name] = entry

        for (caller, callee), count in sorted(data.arcs.items()):
            if caller == callee:
                continue
            child = entries.get(callee)
            if child is None:
                continue
            share = count / max(1, calls_in.get(callee, count))
            child_self = data.self_seconds(callee) * share
            child_children = entries[callee].children_seconds * share
            if caller != SPONTANEOUS and caller in entries:
                entries[caller].children.append(
                    ArcShare(callee, count, child_self, child_children)
                )
            child.parents.append(ArcShare(caller, count, child_self, child_children))

        return cls(entries, data.total_seconds())

    # ------------------------------------------------------------------
    def get(self, name: str) -> CallGraphEntry:
        return self.entries[name]

    def render(self) -> str:
        """Render a gprof-style call-graph section."""
        lines = [
            "                     Call graph",
            "",
            "index % time    self  children    called     name",
        ]
        total = self.total_seconds or 1.0
        for entry in sorted(self.entries.values(), key=lambda e: e.index):
            for parent in entry.parents:
                lines.append(
                    f"            {parent.self_seconds:8.2f} {parent.children_seconds:8.2f} "
                    f"{parent.calls:10d}/{entry.calls:<10d}    {parent.name}"
                )
            pct = 100.0 * entry.total_seconds / total
            lines.append(
                f"[{entry.index}] {pct:6.1f} {entry.self_seconds:8.2f} "
                f"{entry.children_seconds:8.2f} {entry.calls:10d}         {entry.name} [{entry.index}]"
            )
            for child in entry.children:
                callee_calls = self.entries[child.name].calls
                lines.append(
                    f"            {child.self_seconds:8.2f} {child.children_seconds:8.2f} "
                    f"{child.calls:10d}/{callee_calls:<10d}    {child.name}"
                )
            lines.append("-" * 70)
        return "\n".join(lines) + "\n"


def ancestors_of(data: GmonData, func: str) -> List[str]:
    """All (transitive) callers of ``func`` in the arc graph."""
    graph = nx.DiGraph()
    for (caller, callee) in data.arcs:
        graph.add_edge(caller, callee)
    if func not in graph:
        return []
    return sorted(nx.ancestors(graph, func) - {SPONTANEOUS})
