"""The gprof flat profile.

The flat profile is the table the paper's analysis actually consumes: one
row per function with *% time*, *cumulative seconds*, *self seconds*,
*calls*, and per-call times.  This module builds it from a
:class:`~repro.gprof.gmon.GmonData` snapshot, renders it in gprof's text
layout, and parses that layout back (the original pipeline shells out to
``gprof`` and parses its stdout).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.gprof.gmon import GmonData
from repro.util.errors import FormatError

_HEADER_LINES = (
    "Flat profile:",
    "",
    "Each sample counts as {period} seconds.",
    "  %   cumulative   self              self     total",
    " time   seconds   seconds    calls  ms/call  ms/call  name",
)

_ROW_RE = re.compile(
    r"^\s*(?P<pct>\d+\.\d+)\s+(?P<cum>\d+\.\d+)\s+(?P<self>\d+\.\d+)"
    r"(?:\s+(?P<calls>\d+)\s+(?P<selfms>[\d.]+)\s+(?P<totms>[\d.]+))?"
    r"\s+(?P<name>\S.*?)\s*$"
)


@dataclass(frozen=True)
class FlatProfileEntry:
    """One row of the flat profile."""

    name: str
    pct_time: float
    cum_seconds: float
    self_seconds: float
    calls: Optional[int]  # None when gprof prints blanks (no arcs seen)
    self_ms_per_call: Optional[float]
    total_ms_per_call: Optional[float]


class FlatProfile:
    """An ordered flat profile (descending self-time, gprof's order)."""

    def __init__(self, entries: List[FlatProfileEntry], sample_period: float = 0.01,
                 timestamp: float = 0.0, rank: int = 0) -> None:
        self.entries = list(entries)
        self.sample_period = sample_period
        self.timestamp = timestamp
        self.rank = rank
        self._by_name: Dict[str, FlatProfileEntry] = {e.name: e for e in self.entries}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_gmon(cls, data: GmonData) -> "FlatProfile":
        """Build the flat profile exactly as gprof does from gmon state.

        Functions appear if they have histogram ticks *or* call arcs into
        them; self-time is ``ticks * sample_period``; calls are summed over
        incoming arcs (``None`` if the function was only ever sampled,
        which gprof renders as blank columns).
        """
        total = data.total_seconds()
        calls_in: Dict[str, int] = {}
        for (_caller, callee), count in data.arcs.items():
            calls_in[callee] = calls_in.get(callee, 0) + count

        names = set(data.hist) | set(calls_in)
        rows: List[FlatProfileEntry] = []
        for name in names:
            self_s = data.self_seconds(name)
            calls = calls_in.get(name)
            self_ms = (self_s / calls * 1000.0) if calls else None
            rows.append(
                FlatProfileEntry(
                    name=name,
                    pct_time=(100.0 * self_s / total) if total > 0 else 0.0,
                    cum_seconds=0.0,  # filled below after sorting
                    self_seconds=self_s,
                    calls=calls,
                    self_ms_per_call=self_ms,
                    total_ms_per_call=self_ms,  # flat profile: total == self here
                )
            )
        rows.sort(key=lambda e: (-e.self_seconds, e.name))
        cum = 0.0
        finalized = []
        for entry in rows:
            cum += entry.self_seconds
            finalized.append(
                FlatProfileEntry(
                    name=entry.name,
                    pct_time=entry.pct_time,
                    cum_seconds=cum,
                    self_seconds=entry.self_seconds,
                    calls=entry.calls,
                    self_ms_per_call=entry.self_ms_per_call,
                    total_ms_per_call=entry.total_ms_per_call,
                )
            )
        return cls(finalized, sample_period=data.sample_period,
                   timestamp=data.timestamp, rank=data.rank)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[FlatProfileEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, name: str) -> Optional[FlatProfileEntry]:
        """Entry for ``name``, or None if the function never appeared."""
        return self._by_name.get(name)

    def self_seconds(self, name: str) -> float:
        entry = self._by_name.get(name)
        return entry.self_seconds if entry else 0.0

    def calls(self, name: str) -> int:
        entry = self._by_name.get(name)
        return entry.calls if entry and entry.calls is not None else 0

    def function_names(self) -> List[str]:
        return [e.name for e in self.entries]

    def total_seconds(self) -> float:
        return sum(e.self_seconds for e in self.entries)

    # ------------------------------------------------------------------
    # text round-trip
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render in gprof's flat-profile text layout."""
        lines = [
            _HEADER_LINES[0],
            _HEADER_LINES[1],
            _HEADER_LINES[2].format(period=f"{self.sample_period:.2f}"),
            _HEADER_LINES[3],
            _HEADER_LINES[4],
        ]
        for e in self.entries:
            if e.calls is not None:
                lines.append(
                    f"{e.pct_time:6.2f} {e.cum_seconds:10.2f} {e.self_seconds:9.2f} "
                    f"{e.calls:8d} {e.self_ms_per_call or 0.0:8.2f} "
                    f"{e.total_ms_per_call or 0.0:8.2f}  {e.name}"
                )
            else:
                lines.append(
                    f"{e.pct_time:6.2f} {e.cum_seconds:10.2f} {e.self_seconds:9.2f} "
                    f"{'':8s} {'':8s} {'':8s}  {e.name}"
                )
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "FlatProfile":
        """Parse a gprof flat-profile text report.

        Accepts the layout produced by :meth:`render` (which mirrors GNU
        gprof).  Raises :class:`FormatError` if no header is found.
        """
        lines = text.splitlines()
        period = 0.01
        start = None
        for i, line in enumerate(lines):
            m = re.search(r"Each sample counts as ([\d.]+) seconds", line)
            if m:
                period = float(m.group(1))
            if line.strip().startswith("time") and "name" in line:
                start = i + 1
                break
        if start is None:
            raise FormatError("no flat profile header found")

        entries: List[FlatProfileEntry] = []
        for line in lines[start:]:
            if not line.strip():
                break
            m = _ROW_RE.match(line)
            if not m:
                break
            calls = int(m.group("calls")) if m.group("calls") else None
            entries.append(
                FlatProfileEntry(
                    name=m.group("name"),
                    pct_time=float(m.group("pct")),
                    cum_seconds=float(m.group("cum")),
                    self_seconds=float(m.group("self")),
                    calls=calls,
                    self_ms_per_call=float(m.group("selfms")) if m.group("selfms") else None,
                    total_ms_per_call=float(m.group("totms")) if m.group("totms") else None,
                )
            )
        return cls(entries, sample_period=period)
