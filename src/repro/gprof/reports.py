"""Whole gprof report rendering and parsing.

``render_gprof_report`` produces the two-section text report (flat profile
followed by call graph) that the real ``gprof`` CLI emits and that the
paper's tooling parses.  ``parse_flat_profile`` extracts the flat section
from such a report — the only section the published analysis consumes.
"""

from __future__ import annotations

from repro.gprof.callgraph import CallGraphProfile
from repro.gprof.flatprofile import FlatProfile
from repro.gprof.gmon import GmonData


def render_gprof_report(data: GmonData, include_callgraph: bool = True) -> str:
    """Render a gprof-style text report for one gmon snapshot."""
    parts = [FlatProfile.from_gmon(data).render()]
    if include_callgraph:
        parts.append("\n")
        parts.append(CallGraphProfile.from_gmon(data).render())
    return "".join(parts)


def parse_flat_profile(text: str) -> FlatProfile:
    """Parse the flat-profile section out of a gprof text report."""
    return FlatProfile.parse(text)
