"""A gcov-style coverage-counter data source (proof of concept).

The paper's footnote 1: "we have created proof-of-concept
implementations for both the gcov and JaCoCo tools" — i.e. the
methodology is not tied to gprof; any incrementally-dumpable profile
source works.  This module provides the gcov-flavoured variant:
per-function *execution counters* (no sampled time), snapshotted
cumulatively like IncProf's gmon dumps, with a text format and an
adapter into the standard :class:`~repro.core.intervals.IntervalData`
so the identical clustering pipeline runs on counter data.

Because counters carry no self-time, the adapter exposes them through
the ``calls`` matrix and mirrors them into ``self_time`` as normalized
activity weights — phase detection then runs on relative execution
intensity, which is what a coverage tool can actually observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from typing import TYPE_CHECKING

from repro.simulate.engine import EngineObserver
from repro.util.errors import FormatError, ProfileDataError

if TYPE_CHECKING:  # imported lazily at runtime: core.intervals imports gprof
    from repro.core.intervals import IntervalData

HEADER = "# igcov 1"


@dataclass
class CoverageData:
    """Cumulative per-function execution counters (one snapshot)."""

    counters: Dict[str, int] = field(default_factory=dict)
    timestamp: float = 0.0

    def bump(self, func: str, count: int = 1) -> None:
        if count > 0:
            self.counters[func] = self.counters.get(func, 0) + count

    def copy(self) -> "CoverageData":
        return CoverageData(counters=dict(self.counters), timestamp=self.timestamp)

    # ------------------------------------------------------------------
    # .gcov-flavoured text format
    # ------------------------------------------------------------------
    def render(self) -> str:
        lines = [HEADER, f"timestamp: {self.timestamp:.6f}"]
        for func in sorted(self.counters):
            lines.append(f"{self.counters[func]:>12}: {func}")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "CoverageData":
        lines = text.splitlines()
        if not lines or lines[0].strip() != HEADER:
            raise FormatError("not an igcov coverage dump")
        data = cls()
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            if line.startswith("timestamp:"):
                data.timestamp = float(line.split(":", 1)[1])
                continue
            count_part, _, func = line.partition(":")
            try:
                count = int(count_part.strip())
            except ValueError as exc:
                raise FormatError(f"bad counter line {line!r}") from exc
            data.counters[func.strip()] = count
        return data

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.render())

    @classmethod
    def read(cls, path: Union[str, Path]) -> "CoverageData":
        return cls.parse(Path(path).read_text())


class CoverageProfiler(EngineObserver):
    """Engine observer counting function executions (the gcov runtime)."""

    def __init__(self) -> None:
        self._data = CoverageData()

    def on_call(self, caller: str, callee: str, t: float, count: int = 1) -> None:
        self._data.bump(callee, count)

    def snapshot(self, timestamp: float) -> CoverageData:
        snap = self._data.copy()
        snap.timestamp = timestamp
        return snap


def intervals_from_coverage(
    snapshots: Sequence[CoverageData],
    interval: float = 1.0,
) -> "IntervalData":
    """Difference cumulative coverage snapshots into IntervalData.

    ``calls`` holds the per-interval execution counts; ``self_time``
    holds each function's share of the interval's total activity (a
    unitless intensity in [0, interval]) so the standard self-time
    feature pipeline applies unchanged.
    """
    from repro.core.intervals import IntervalData

    if len(snapshots) < 2:
        raise ProfileDataError("need at least two coverage snapshots")

    names = sorted({f for s in snapshots for f in s.counters})
    index = {name: i for i, name in enumerate(names)}
    n = len(snapshots)

    cum = np.zeros((n, len(names)), dtype=np.int64)
    for i, snap in enumerate(snapshots):
        for func, count in snap.counters.items():
            cum[i, index[func]] = count
    calls = np.diff(cum, axis=0, prepend=np.zeros((1, len(names)), dtype=np.int64))
    np.clip(calls, 0, None, out=calls)

    totals = calls.sum(axis=1, keepdims=True).astype(float)
    totals[totals == 0] = 1.0
    intensity = calls / totals * interval

    timestamps = np.array(
        [s.timestamp if s.timestamp else (i + 1) * interval
         for i, s in enumerate(snapshots)]
    )
    return IntervalData(
        functions=names,
        self_time=intensity,
        calls=calls,
        timestamps=timestamps,
        interval=interval,
        interval_gmons=None,
    )
