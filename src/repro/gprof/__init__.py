"""A from-scratch gprof substrate.

The original IncProf leans on gprof's runtime (mcount call arcs + 100 Hz
PC-sampling histogram) and on the ``gprof`` command-line tool to turn
binary ``gmon.out`` dumps into flat-profile text.  This package provides
the equivalent pieces:

- :mod:`repro.gprof.gmon` — the in-memory profile snapshot
  (:class:`GmonData`) and a versioned binary file format for it;
- :mod:`repro.gprof.flatprofile` — the flat per-function profile, with
  gprof-style text rendering *and* parsing (the paper's pipeline parses
  gprof text reports);
- :mod:`repro.gprof.callgraph` — the parent/child call-graph profile with
  gprof's time-propagation semantics;
- :mod:`repro.gprof.reports` — whole-report rendering and parsing.
"""

from repro.gprof.gmon import GmonData, read_gmon, write_gmon, dumps_gmon, loads_gmon
from repro.gprof.flatprofile import FlatProfile, FlatProfileEntry
from repro.gprof.callgraph import CallGraphProfile, CallGraphEntry
from repro.gprof.reports import render_gprof_report, parse_flat_profile
from repro.gprof.gcov import CoverageData, CoverageProfiler, intervals_from_coverage
from repro.gprof.merge import merge_gmons, merge_sample_series

__all__ = [
    "GmonData",
    "read_gmon",
    "write_gmon",
    "dumps_gmon",
    "loads_gmon",
    "FlatProfile",
    "FlatProfileEntry",
    "CallGraphProfile",
    "CallGraphEntry",
    "render_gprof_report",
    "parse_flat_profile",
    "CoverageData",
    "CoverageProfiler",
    "intervals_from_coverage",
    "merge_gmons",
    "merge_sample_series",
]
