"""Merging gmon profiles (``gprof -s`` / gmon.sum semantics).

Real gprof can sum multiple profile dumps into one (``gmon.sum``) — used
to aggregate repeated runs or, in MPI settings, per-rank profiles.  The
IncProf paper analyzes a single representative rank; merging enables the
natural alternative (aggregate-then-analyze), which the rank-aggregation
ablation bench compares against.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.gprof.gmon import GmonData
from repro.util.errors import ValidationError


def merge_gmons(snapshots: Sequence[GmonData], rank: int = -1) -> GmonData:
    """Sum histograms and arcs across profiles (same sample period).

    The merged snapshot carries the latest timestamp of its inputs and a
    caller-chosen rank id (default -1: "aggregate").
    """
    if not snapshots:
        raise ValidationError("nothing to merge")
    period = snapshots[0].sample_period
    merged = GmonData(sample_period=period, rank=rank)
    for snap in snapshots:
        if abs(snap.sample_period - period) > 1e-12:
            raise ValidationError("cannot merge profiles with different sample periods")
        for func, ticks in snap.hist.items():
            merged.add_ticks(func, ticks)
        for (caller, callee), count in snap.arcs.items():
            merged.add_arc(caller, callee, count)
        merged.timestamp = max(merged.timestamp, snap.timestamp)
    return merged


def merge_sample_series(per_rank: Sequence[Sequence[GmonData]]) -> List[GmonData]:
    """Merge per-rank *snapshot series* index-by-index.

    Ranks of a symmetric run dump at the same interval boundaries; the
    merged series is the cluster-wide cumulative profile per interval.
    Series of unequal length are merged up to the shortest (trailing
    dumps of laggard ranks have no counterpart to sum with).
    """
    if not per_rank:
        raise ValidationError("nothing to merge")
    length = min(len(series) for series in per_rank)
    if length == 0:
        raise ValidationError("a rank has no samples")
    merged: List[GmonData] = []
    for index in range(length):
        snap = merge_gmons([series[index] for series in per_rank])
        snap.timestamp = max(series[index].timestamp for series in per_rank)
        merged.append(snap)
    return merged
