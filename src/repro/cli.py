"""Command-line interface: ``incprof`` (or ``python -m repro``).

Subcommands mirror the tool's workflow:

- ``incprof run --app graph500 --out samples/`` — run a workload under
  the collector and write per-interval gmon sample files;
- ``incprof analyze samples/`` — detect phases and select sites from a
  sample directory;
- ``incprof report --app minife`` — run the full experiment in memory and
  print the paper-style table;
- ``incprof figure --app miniamr`` — print the heartbeat figure;
- ``incprof table1`` — regenerate Table I across all apps;
- ``incprof apps`` — list workloads;
- ``incprof compact samples/`` — run retention compaction + artifact GC
  on an interval store;
- ``incprof replay samples/ --t0 10 --t1 60`` — time-travel: re-drive a
  recorded window through the streaming engine (``--sweep`` backtests
  refit thresholds against it);
- ``incprof serve`` — run the ``incprofd`` phase-monitoring daemon;
- ``incprof submit --app graph500 --to HOST:PORT`` — stream a collection
  run's ranks through a running daemon;
- ``incprof fleet-status --to HOST:PORT`` — query a daemon's fleet view;
- ``incprof metrics --to HOST:PORT`` — scrape Prometheus text metrics;
- ``incprof top --to HOST:PORT`` — live terminal view of daemon health.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import describe_apps, get_app, is_known_app, paper_app_names
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.core.report import render_full_report
from repro.eval.experiments import run_experiment, run_experiments
from repro.eval.figures import heartbeat_figure
from repro.eval.tables import app_sites_table, comparison_table, table1, table1_comparison
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.store.segments import open_store


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = paper-sized run)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="experiment seed")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="IncProf collection interval in seconds")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="analysis process-pool size (results are "
                             "identical to a serial run; default serial)")


def _app_arg(value: str) -> str:
    """argparse type: any resolvable app, concrete or factory-addressed.

    Unlike a static ``choices=`` list this accepts parameterized
    addresses like ``scenario:seed=42,tier=hard``.
    """
    if not is_known_app(value):
        raise argparse.ArgumentTypeError(
            f"unknown app {value!r} (see 'incprof list-apps')")
    if ":" in value:
        from repro.util.errors import AppError

        try:  # factory addresses carry arguments; validate them now
            get_app(value)
        except AppError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
    return value


def _cmd_list_apps(args: argparse.Namespace) -> int:
    """The full registry: concrete apps and factory families."""
    rows = describe_apps()
    if args.kind:
        rows = [r for r in rows if r["kind"] == args.kind]
    if args.json:
        import json as _json

        print(_json.dumps(rows, indent=1))
        return 0
    width = max((len(r["name"]) for r in rows), default=4)
    for row in rows:
        print(f"{row['name']:<{width}s}  {row['kind']:<9s}  "
              f"{row['description']}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    """Materialize generated scenarios: print (or dump) their specs."""
    from repro.apps.generator import TIER_NAMES, ScenarioGenerator

    tiers = TIER_NAMES if args.tier == "all" else (args.tier,)
    generator = ScenarioGenerator(args.seed, tiers)
    specs = generator.specs(args.n)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        for spec in specs:
            safe = spec.name.replace(":", "_").replace(",", "_")
            (out / f"{safe}.json").write_text(spec.to_json() + "\n")
        print(f"wrote {len(specs)} scenario spec(s) to {out}")
        return 0
    if args.json:
        import json as _json

        print(_json.dumps([spec.to_obj() for spec in specs], indent=1))
        return 0
    for spec in specs:
        dominants = ", ".join(spec.dominant_functions()[:3])
        print(f"{spec.name:<36s} phases={spec.n_true_phases} "
              f"segments={len(spec.timeline)} "
              f"kernels={len(spec.kernels)} "
              f"duration={spec.total_duration:7.1f}s  dominants: {dominants}")
    return 0


def _cmd_sweep_scenarios(args: argparse.Namespace) -> int:
    """Score phase recovery across a generated scenario population."""
    import json as _json
    import sys as _sys

    from repro.apps.generator import TIER_NAMES
    from repro.eval.scenarios import sweep_scenarios, sweep_table

    tiers = TIER_NAMES if args.tiers == "all" else tuple(
        t.strip() for t in args.tiers.split(",") if t.strip())

    def progress(done: int, total: int) -> None:
        if done % 10 == 0 or done == total:
            print(f"\r  scored {done}/{total}", end="", flush=True,
                  file=_sys.stderr)

    report = sweep_scenarios(n=args.n, seed=args.seed, tiers=tiers,
                             interval=args.interval, workers=args.workers,
                             progress=progress if not args.json else None)
    if not args.json:
        print(file=_sys.stderr)
    scores = report.pop("scores")
    if args.json:
        print(_json.dumps(report, indent=1, sort_keys=True))
    else:
        print(sweep_table(report).render())
    if args.bench_out:
        from pathlib import Path

        path = Path(args.bench_out)
        record = (_json.loads(path.read_text()) if path.exists() else {})
        record["scenarios"] = report
        path.write_text(_json.dumps(record, indent=2, sort_keys=True) + "\n")
        print(f"recorded scenario distribution in {path}")
    failures = []
    for floor in args.min_median or ():
        tier, _, value = floor.partition("=")
        try:
            threshold = float(value)
        except ValueError:
            print(f"error: bad --min-median {floor!r} "
                  "(expected tier=value)")
            return 2
        got = report["tiers"].get(tier, {}).get("median_agreement")
        if got is None:
            failures.append(f"{tier}: no scenarios swept")
        elif got < threshold:
            failures.append(f"{tier}: median agreement {got} < {threshold}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    del scores
    return 0


def _cmd_apps(_args: argparse.Namespace) -> int:
    for name in paper_app_names():
        app = get_app(name)
        info = app.describe()
        live = "yes" if info["has_live_mode"] else "no"
        print(f"{name:10s} ranks={info['default_ranks']:<3} live-mode={live} "
              f"manual-sites={len(app.manual_sites)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    config = SessionConfig(
        interval=args.interval,
        ranks=args.ranks,
        seed=args.seed,
        scale=args.scale,
        store_dir=args.out,
        store_format=args.store_format,
    )
    result = Session(app, config).run()
    print(f"{args.app}: {len(result.per_rank)} rank(s), "
          f"runtime {result.runtime:.1f}s, "
          f"{len(result.samples(0))} samples/rank -> {args.out}")
    return 0


def _analyze_follow(args: argparse.Namespace) -> int:
    """Tail a growing sample directory: live assignments, then full report.

    Each poll loads only the dumps past the watermark and feeds them to
    the streaming engine one at a time, so a run that is still being
    collected gets per-interval phase assignments (and refit events) with
    O(functions) work per new snapshot.  When polling stops the engine
    finalizes through the batch pipeline and prints the usual report.
    """
    from repro.core.incremental import IncrementalAnalyzer

    store = open_store(args.samples)
    config = AnalysisConfig(kselect_method=args.kselect,
                            coverage_threshold=args.coverage)
    engine = IncrementalAnalyzer(config)
    watermark = -1
    polls = 0
    print(f"following {args.samples} (rank {args.rank}, "
          f"poll every {args.poll:g}s; Ctrl-C to stop and finalize)")
    try:
        while True:
            for index, snapshot in store.scan(str(args.rank), since=watermark):
                watermark = index
                update = engine.observe(snapshot)
                if update.phase_id is None:
                    label = "warmup"
                elif update.novel:
                    label = "novel"
                else:
                    label = f"phase {update.phase_id}"
                line = (f"[{update.index:5d}] t={update.timestamp:9.2f}  "
                        f"{label:<9s} v{update.model_version}")
                if update.refit is not None:
                    event = update.refit
                    line += (f"  << refit v{event.version}: "
                             f"k {event.old_k}->{event.new_k} ({event.reason})")
                print(line, flush=True)
            polls += 1
            if args.max_polls > 0 and polls >= args.max_polls:
                break
            import time as _time

            _time.sleep(args.poll)
    except KeyboardInterrupt:
        print("\nstopping follow; finalizing")
    if engine.n_intervals < 2:
        print(f"only {engine.n_intervals} interval(s) collected; "
              "need at least 2 for a final analysis")
        return 1
    analysis = engine.finalize(workers=args.workers)
    print()
    print(render_full_report(analysis, app_name=f"{args.samples} (followed)"))
    if args.save_model:
        from repro.core.model_io import save_model

        path = save_model(analysis, args.save_model,
                          meta={"trained_on": f"{args.samples} (followed)"})
        print(f"\nphase model -> {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.follow:
        if args.merge_ranks:
            print("error: --follow tails a single rank; drop --merge-ranks")
            return 2
        return _analyze_follow(args)
    store = open_store(args.samples)
    if args.merge_ranks:
        from repro.gprof.merge import merge_sample_series

        per_rank = [[snap for _i, snap in store.scan(stream)]
                    for stream in store.streams()]
        snapshots = merge_sample_series(per_rank)
        label = f"{args.samples} (merged {len(per_rank)} ranks)"
    else:
        snapshots = [snap for _i, snap in store.scan(str(args.rank))]
        label = args.samples
    config = AnalysisConfig(kselect_method=args.kselect,
                            coverage_threshold=args.coverage)
    analysis = analyze_snapshots(snapshots, config, workers=args.workers)
    print(render_full_report(analysis, app_name=label))
    if args.save_model:
        from repro.core.model_io import save_model

        path = save_model(analysis, args.save_model,
                          meta={"trained_on": label})
        print(f"\nphase model -> {path} ({path.stat().st_size} bytes)")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = run_experiment(args.app, scale=args.scale, seed=args.seed,
                            interval=args.interval, workers=args.workers)
    print(app_sites_table(result).render())
    print()
    from repro.core.timeline import render_timeline

    print(render_timeline(result.analysis, width=90))
    print()
    print(comparison_table(result).render())
    if args.lift:
        from repro.core.callgraph_lift import suggest_lifts

        suggestions = suggest_lifts(result.analysis)
        print()
        if suggestions:
            print("call-graph lift suggestions:")
            for suggestion in suggestions:
                print(f"  {suggestion}")
        else:
            print("call-graph lift suggestions: none")
    if args.merge:
        from repro.core.postprocess import merge_equivalent_phases

        merged = merge_equivalent_phases(result.analysis)
        print()
        print(f"site-equivalence merging: {merged.n_original} phases -> "
              f"{merged.n_phases}")
        for group in merged.merged:
            mark = " (merged)" if group.was_merged else ""
            print(f"  merged phase {group.merged_id}{mark}: "
                  f"phases {list(group.phase_ids)}, "
                  f"{group.app_pct:.1f}% of run, "
                  f"sites {sorted(group.functions)}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    """Profile an app's *real* NumPy kernels with the live tracer."""
    from repro.gprof.flatprofile import FlatProfile
    from repro.incprof.collector import LiveCollector
    from repro.profiler.tracing import TracingProfiler, names_filter

    app = get_app(args.app)
    live = app.live_run()
    if live is None:
        print(f"{args.app} has no live mode")
        return 1
    profiler = TracingProfiler(sample_period=0.005,
                               name_filter=names_filter(live.function_names))
    collector = LiveCollector(profiler, interval=args.interval)
    collector.start()
    with profiler:
        live.main(args.scale)
    samples = collector.stop()
    print(f"{len(samples)} live snapshots over {profiler.elapsed:.2f}s")
    print()
    print(FlatProfile.from_gmon(samples[-1]).render())
    if len(samples) >= 4:
        analysis = analyze_snapshots(
            samples, AnalysisConfig(kmax=4, drop_short_final=False)
        )
        print(render_full_report(analysis, app_name=f"{args.app} (live)"))
    return 0


def _cmd_live_script(args: argparse.Namespace) -> int:
    """Profile an arbitrary Python script (the preload-library analogue)."""
    from repro.gprof.flatprofile import FlatProfile
    from repro.incprof.script_runner import profile_script

    profile = profile_script(
        args.script,
        argv=args.args,
        interval=args.interval,
        store_dir=args.out,
    )
    print(f"{len(profile.samples)} snapshots over {profile.elapsed:.2f}s"
          + (f" -> {args.out}" if args.out else ""))
    print()
    print(FlatProfile.from_gmon(profile.final).render())
    if len(profile.samples) >= 4:
        analysis = analyze_snapshots(
            profile.samples, AnalysisConfig(kmax=4, drop_short_final=False)
        )
        print(render_full_report(analysis, app_name=args.script))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    result = run_experiment(args.app, scale=args.scale, seed=args.seed,
                            interval=args.interval)
    print(heartbeat_figure(result).render())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Sum gmon sample files (gprof -s / gmon.sum semantics)."""
    from repro.gprof.gmon import read_gmon, write_gmon
    from repro.gprof.merge import merge_gmons

    snapshots = [read_gmon(path) for path in args.inputs]
    merged = merge_gmons(snapshots)
    write_gmon(merged, args.out)
    print(f"merged {len(snapshots)} profiles "
          f"({merged.total_seconds():.2f}s sampled, "
          f"{len(merged.functions())} functions) -> {args.out}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    """Run retention compaction (and artifact GC) on an interval store."""
    from repro.store.segments import SegmentStore
    from repro.util.errors import ReproError

    try:
        store = open_store(args.store)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    with store:
        if isinstance(store, SegmentStore):
            report = store.compact(stream_id=args.stream,
                                   raw_keep=args.raw_keep,
                                   vector_keep=args.vector_keep)
        else:
            report = store.compact(args.stream)
        removed = store.gc(keep_versions=args.gc_keep)
    saved = report["bytes_before"] - report["bytes_after"]
    ratio = (report["bytes_before"] / report["bytes_after"]
             if report["bytes_after"] else 0.0)
    print(f"compacted {report['segments_compacted']} segment(s): "
          f"{report['bytes_before']} -> {report['bytes_after']} bytes"
          + (f" ({ratio:.1f}x smaller, {saved} saved)" if saved > 0 else ""))
    if removed:
        print(f"gc removed {len(removed)} versioned artifact(s)")
    describe = getattr(store, "describe", None)
    if describe is not None:
        info = describe()
        tiers = info["tiers"]
        print(f"store {info['root']}: {info['streams']} stream(s), "
              f"{info['total_bytes']} bytes "
              f"(raw {tiers['0']['segments']}, "
              f"vector {tiers['1']['segments']}, "
              f"sketch {tiers['2']['segments']} segments)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    """Time-travel: re-drive a recorded window through the live engine."""
    from repro.core.incremental import DriftConfig
    from repro.util.errors import ReproError

    try:
        store = open_store(args.store)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    streams = store.streams()
    stream = args.stream
    if stream is None:
        if len(streams) != 1:
            print("error: store has "
                  f"{len(streams)} streams ({', '.join(streams) or 'none'}); "
                  "pick one with --stream")
            return 2
        stream = streams[0]
    if args.sweep:
        from repro.eval.convergence import sweep_refit_thresholds

        thresholds = [float(x) for x in args.sweep.split(",") if x.strip()]
        results = sweep_refit_thresholds(
            store, stream, thresholds, t0=args.t0, t1=args.t1,
            warmup=args.warmup, refit_cooldown=args.refit_cooldown)
        print(f"refit-drift-threshold sweep over {stream!r} "
              f"({results[0].replay.n_intervals} intervals):")
        print(f"{'threshold':>10s} {'refits':>7s} {'phases':>7s} "
              f"{'novel':>6s} {'agreement':>10s} {'iv/s':>9s}")
        for row in results:
            print(f"{row.threshold:10.2f} {row.n_refits:7d} "
                  f"{row.n_phases:7d} {row.n_novel:6d} "
                  f"{row.agreement:10.3f} "
                  f"{row.replay.intervals_per_second:9.0f}")
        return 0
    drift = None
    if args.drift_threshold is not None:
        drift = DriftConfig(novel_rate=args.drift_threshold)
    try:
        result = store.replay(stream, args.t0, args.t1, drift=drift,
                              warmup=args.warmup,
                              refit_cooldown=args.refit_cooldown)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    timeline = result.phase_timeline()
    phases = sorted({p for p in timeline if p is not None})
    print(f"replayed {result.n_intervals} interval(s) of {stream!r} in "
          f"{result.elapsed:.3f}s ({result.intervals_per_second:.0f} "
          f"intervals/s)")
    print(f"  phases seen: {phases or 'none (all warmup)'}; "
          f"refits: {len(result.refits)}")
    for event in result.refits:
        print(f"  refit v{event.version} at interval "
              f"{event.interval_index}: k {event.old_k}->{event.new_k} "
              f"({event.reason})")
    if args.timeline:
        from repro.core.timeline import render_timeline

        analysis = result.engine.finalize(workers=None)
        print()
        print(render_timeline(analysis, width=90))
    return 0


def _train_template(args: argparse.Namespace):
    """Train the serving tracker: from a sample directory or a fresh run."""
    from repro.core.online import OnlinePhaseTracker

    if args.samples:
        store = open_store(args.samples)
        snapshots = [snap for _i, snap in store.scan(str(args.rank))]
        label = f"samples {args.samples} (rank {args.rank})"
    else:
        app = get_app(args.app)
        config = SessionConfig(interval=args.interval, ranks=1, seed=args.seed,
                               scale=args.scale)
        snapshots = Session(app, config).run().samples(0)
        label = f"app {args.app}"
    analysis = analyze_snapshots(snapshots)
    tracker = OnlinePhaseTracker.from_analysis(analysis)
    print(f"trained on {label}: {analysis.n_phases} phases, "
          f"{analysis.interval_data.n_intervals} intervals")
    return tracker


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import Endpoint, PhaseMonitorServer, ServerConfig

    if args.selftest:
        return _serve_selftest(args)
    template = None
    if args.model:
        from repro.core.model_io import load_model, model_meta
        from repro.util.errors import ModelFormatError

        try:
            template = load_model(args.model)
            meta = model_meta(args.model)
        except ModelFormatError as exc:
            print(f"error: cannot load phase model {args.model}: {exc}")
            return 1
        print(f"loaded phase model {args.model}: "
              f"{meta.get('n_phases', '?')} phases"
              + (f", trained on {meta['trained_on']}"
                 if meta.get("trained_on") else ""))
    elif args.app or args.samples:
        template = _train_template(args)
    else:
        print("no --model/--app/--samples: serving without classification "
              "(ingest + stats only)")
    endpoint = (Endpoint.unix(args.unix) if args.unix
                else Endpoint.tcp(args.host, args.port))
    config = ServerConfig(
        endpoint=endpoint,
        workers=args.workers,
        queue_capacity=args.queue,
        policy=args.policy,
        idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        store_dir=args.store_dir,
        metrics_port=args.metrics_port,
        dashboard_port=args.dashboard_port,
        log_level=args.log_level,
        refit_interval=args.refit_interval,
        refit_drift_threshold=args.refit_drift_threshold,
        worker_id=args.worker_id or "",
        finished_capacity=args.finished_capacity,
    )
    server = PhaseMonitorServer(template, config)
    bound = server.start()
    if server.metrics_http is not None:
        print(f"metrics endpoint: {server.metrics_http.url}")
    if server.dashboard_http is not None:
        print(f"analytics dashboard: {server.dashboard_http.url}")
    if server.quarantined_checkpoint is not None:
        print(f"warning: corrupt checkpoint quarantined -> "
              f"{server.quarantined_checkpoint}; starting fresh")
    if server.restored_streams:
        print(f"restored {len(server.restored_streams)} stream(s) from "
              f"checkpoint: {', '.join(sorted(server.restored_streams))}")
    print(f"incprofd listening on {bound} "
          f"(workers={config.workers}, queue={config.queue_capacity}, "
          f"policy={config.policy}"
          + (f", checkpoints -> {args.checkpoint_dir} "
             f"every {config.checkpoint_interval:g}s"
             if args.checkpoint_dir else "")
          + (f", live refit every >={config.refit_interval:g}s at "
             f"drift >={config.refit_drift_threshold:g}"
             if config.refit_interval is not None else "")
          + ")")
    try:
        server.wait()
    except KeyboardInterrupt:
        print("\nshutting down")
        server.stop()
    return 0


def _serve_selftest(args: argparse.Namespace) -> int:
    """In-process smoke test: daemon + synthetic publishers + assertions."""
    from repro.core.online import OnlinePhaseTracker
    from repro.service import (
        Endpoint,
        PhaseMonitorServer,
        ServerConfig,
        SyntheticLoadGenerator,
    )

    generator = SyntheticLoadGenerator()
    analysis = analyze_snapshots(
        generator.stream(0, 24), AnalysisConfig(kmax=4, drop_short_final=False)
    )
    template = OnlinePhaseTracker.from_analysis(analysis)
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                          workers=args.workers, queue_capacity=args.queue,
                          policy="block")
    n_streams, n_intervals = 4, 24
    with PhaseMonitorServer(template, config) as server:
        load = generator.run(server.endpoint, n_streams, n_intervals)
        stats = server.stats()
    failures = []
    if load.sent != n_streams * n_intervals:
        failures.append(f"sent {load.sent} != {n_streams * n_intervals}")
    if load.processed != load.sent:
        failures.append(f"processed {load.processed} != sent {load.sent}")
    if stats["drops"] != 0:
        failures.append(f"{stats['drops']} drops under blocking policy")
    if not all(r.drained for r in load.streams.values()):
        failures.append("some streams did not drain")
    print(f"selftest: {n_streams} streams x {n_intervals} intervals, "
          f"{load.processed} classified, "
          f"{stats['ingest_rate']:.0f} intervals/s, "
          f"drops={stats['drops']}, "
          f"p99 classify {stats['classify_latency']['p99'] * 1e3:.2f} ms")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("selftest PASS (clean shutdown)")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import tempfile

    from repro.fleet import FleetConfig, FleetRouter, RouterConfig, WorkerSupervisor
    from repro.service import Endpoint
    from repro.util.errors import ReproError

    if args.selftest:
        return _serve_fleet_selftest(args)
    if args.selftest_analytics:
        return _serve_fleet_analytics_selftest(args)
    root = args.root or tempfile.mkdtemp(prefix="incprof-fleet-")
    fleet_config = FleetConfig(
        root=root,
        n_workers=args.workers,
        model_path=args.model,
        worker_threads=args.worker_threads,
        queue_capacity=args.queue,
        policy=args.policy,
        idle_timeout=args.idle_timeout,
        checkpoint_interval=args.checkpoint_interval,
        max_restarts=args.max_restarts,
        log_level=args.log_level,
        archive_intervals=args.archive_intervals,
    )
    endpoint = (Endpoint.unix(args.unix) if args.unix
                else Endpoint.tcp(args.host, args.port))
    router_config = RouterConfig(endpoint=endpoint, mode=args.mode,
                                 log_level=args.log_level,
                                 dashboard_port=args.dashboard_port)
    supervisor = WorkerSupervisor(fleet_config)
    try:
        supervisor.start()
    except ReproError as exc:
        print(f"error: cannot start fleet: {exc}")
        supervisor.stop()
        return 1
    supervisor.start_monitor()
    router = FleetRouter(supervisor, router_config)
    try:
        bound = router.start()
    except (ReproError, OSError) as exc:
        print(f"error: cannot start router: {exc}")
        supervisor.stop()
        return 1
    print(f"incprofd fleet: {args.workers} worker(s) under {root}")
    for worker_id, info in sorted(supervisor.status()["workers"].items()):
        print(f"  {worker_id}: {info['endpoint']}")
    print(f"router listening on {bound} (mode={args.mode}, "
          f"ring generation {supervisor.ring.generation})")
    if router.dashboard_http is not None:
        print(f"analytics dashboard: {router.dashboard_http.url}")
    try:
        router.wait()
    except KeyboardInterrupt:
        print("\nshutting down fleet")
        supervisor.stop()
        router.stop()
    return 0


def _serve_fleet_selftest(args: argparse.Namespace) -> int:
    """Fleet smoke test: generated heterogeneous scenario traffic through
    the router (≥2 scenario shapes spread across ≥2 workers), kill a
    worker, assert the ring rebalances and every stream drains on
    survivors."""
    import shutil
    import tempfile
    import threading
    import time as _time
    from pathlib import Path

    from repro.apps.generator import generate_scenario, scenario_snapshots
    from repro.apps.spec import concat_specs
    from repro.core.model_io import save_model
    from repro.fleet import FleetConfig, FleetRouter, RouterConfig, WorkerSupervisor
    from repro.service import Endpoint, RetryPolicy, ScenarioLoadGenerator

    n_workers = max(2, args.workers)
    n_streams, n_intervals = 4, 30
    root = tempfile.mkdtemp(prefix="incprof-fleet-selftest-")
    failures = []
    try:
        # Two distinct generated shapes: different kernel universes,
        # phase durations, and Markov timelines.
        shapes = [generate_scenario(11, "easy"), generate_scenario(23, "medium")]
        generator = ScenarioLoadGenerator(shapes)
        # Train the serving model on one stream that plays both shapes
        # back to back, so classification sees both kernel universes.
        training = scenario_snapshots(concat_specs("fleet-train", *shapes), 48)
        analysis = analyze_snapshots(
            training, AnalysisConfig(kmax=4, drop_short_final=False))
        model_path = str(Path(root) / "model.ipm")
        save_model(analysis, model_path)
        fleet_config = FleetConfig(
            root=root, n_workers=n_workers, model_path=model_path,
            worker_threads=2, checkpoint_interval=0.2, ping_interval=0.2,
            max_restarts=0, log_level="error",
        )
        retry = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=1.0)
        with WorkerSupervisor(fleet_config) as supervisor:
            supervisor.start_monitor()
            with FleetRouter(supervisor,
                             RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                          mode=args.mode,
                                          log_level="error")) as router:
                # Pick stream ids so the consistent-hash ring provably
                # spreads the scenario traffic over >= 2 workers (the
                # ring lookup is deterministic, so probe candidates).
                streams, owners = [], set()
                candidate = 0
                while len(streams) < n_streams and candidate < 256:
                    shape = candidate % len(shapes)
                    stream_id = f"scn{shape}-{candidate}"
                    owner = supervisor.ring.lookup(stream_id)
                    candidate += 1
                    if (len(streams) == n_streams - 1
                            and len(owners | {owner}) < 2):
                        continue  # last slot must secure 2-worker coverage
                    streams.append((stream_id, shape))
                    owners.add(owner)
                if len(owners) < 2:
                    failures.append(
                        f"stream placement covers {len(owners)} worker(s), "
                        "expected >= 2")
                if len({shape for _sid, shape in streams}) < 2:
                    failures.append("traffic uses < 2 scenario shapes")
                victim = supervisor.ring.lookup(streams[0][0])
                box = {}

                def publish() -> None:
                    box["load"] = generator.run(router.endpoint, streams,
                                                n_intervals, delay=0.05,
                                                retry=retry)

                thread = threading.Thread(target=publish, name="fleet-load")
                thread.start()
                _time.sleep(0.8)  # streams registered, checkpoints written
                supervisor.kill_worker(victim)
                thread.join(timeout=120.0)
                if thread.is_alive():
                    failures.append("load generator did not finish")
                status = supervisor.status()
                stats = router.merged_stats()
        load = box.get("load")
        if load is None:
            failures.append("no load result")
        else:
            for stream_id, report in sorted(load.streams.items()):
                if report.error:
                    failures.append(f"{stream_id}: {report.error}")
                elif not report.drained:
                    failures.append(f"{stream_id}: did not drain")
            # Failover re-sends intervals past the adopter's resume_from
            # (seq dedup keeps them from being classified twice), so sent
            # may legitimately exceed the unique-interval count.
            if load.sent < n_streams * n_intervals:
                failures.append(
                    f"sent {load.sent} < {n_streams * n_intervals} "
                    "(intervals lost)")
        if status["evictions_total"] != 1:
            failures.append(
                f"evictions_total {status['evictions_total']} != 1 "
                f"(victim {victim} should have been evicted)")
        if len(status["members"]) != n_workers - 1:
            failures.append(f"ring has {len(status['members'])} members, "
                            f"expected {n_workers - 1}")
        source = stats.get("classify_latency_source", {})
        print(f"fleet selftest: {n_workers} workers, {n_streams} streams x "
              f"{n_intervals} intervals ({len(shapes)} scenario shapes "
              f"across {len(owners)} workers) through {args.mode} router; "
              f"killed {victim}; "
              f"migrated={status['migrations_total']}, "
              f"ring generation {status['generation']}, "
              f"latency merge {source.get('kind', '?')}")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("fleet selftest PASS (rebalance + resume on survivors)")
    return 0


def _serve_fleet_analytics_selftest(args: argparse.Namespace) -> int:
    """Analytics smoke: two distinct workload shapes through an
    archiving fleet; assert the live cohorts separate them, the
    dashboard serves, and the offline pass reproduces the split."""
    import shutil
    import tempfile
    import urllib.request
    from pathlib import Path

    from repro.core.model_io import save_model
    from repro.fleet import FleetConfig, FleetRouter, RouterConfig, WorkerSupervisor
    from repro.fleet.analytics import analyze_fleet_dir
    from repro.service import (
        Endpoint,
        PhaseClient,
        RetryPolicy,
        SyntheticLoadGenerator,
        publish_samples,
    )

    n_workers = max(2, args.workers)
    per_kind, n_intervals = 3, 40
    # Two workload shapes over one function universe: "steady" pins one
    # dominant function (one phase, no transitions), "alternating" flips
    # between two every interval (two phases, transition rate ~1).
    kinds = {
        "steady": lambda i: 0,
        "alternating": lambda i: 1 + (i % 2),
    }
    root = tempfile.mkdtemp(prefix="incprof-fleet-analytics-")
    failures = []

    def check_split(assignments, label: str) -> None:
        groups = {}
        for kind in kinds:
            groups[kind] = {assignments.get(f"{kind}-{i}")
                            for i in range(per_kind)}
            if None in groups[kind]:
                failures.append(f"{label}: missing streams of kind {kind}: "
                                f"{sorted(assignments)}")
                return
        if groups["steady"] & groups["alternating"]:
            failures.append(f"{label}: workload kinds share a cohort: "
                            f"{assignments}")

    try:
        generator = SyntheticLoadGenerator()
        # Train on the default rotation so every dominant-function phase
        # either workload visits is in the served model.
        analysis = analyze_snapshots(
            generator.stream(0, 24),
            AnalysisConfig(kmax=4, drop_short_final=False))
        model_path = str(Path(root) / "model.ipm")
        save_model(analysis, model_path)
        fleet_config = FleetConfig(
            root=root, n_workers=n_workers, model_path=model_path,
            worker_threads=2, checkpoint_interval=0.2, ping_interval=0.2,
            max_restarts=0, log_level="error", archive_intervals=True,
        )
        retry = RetryPolicy(max_attempts=8, base_delay=0.1, max_delay=1.0)
        with WorkerSupervisor(fleet_config) as supervisor:
            supervisor.start_monitor()
            with FleetRouter(
                    supervisor,
                    RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                 mode=args.mode, log_level="error",
                                 dashboard_port=0)) as router:
                for kind, pattern in kinds.items():
                    for i in range(per_kind):
                        report = publish_samples(
                            router.endpoint, f"{kind}-{i}",
                            generator.stream(i, n_intervals, pattern=pattern),
                            app="analytics-selftest", rank=i, retry=retry)
                        if report.error:
                            failures.append(f"{kind}-{i}: {report.error}")
                with PhaseClient(router.endpoint) as client:
                    reply = client.fleet_analytics()
                if not reply.ok:
                    failures.append(f"fleet_analytics failed: {reply.error}")
                    live = {}
                else:
                    live = reply.data
                    if live.get("n_cohorts", 0) < 2:
                        failures.append(
                            f"live pass found {live.get('n_cohorts')} "
                            "cohort(s), expected >= 2")
                    check_split(live.get("assignments", {}), "live")
                assert router.dashboard_http is not None
                for page in ("", "analytics.json", "healthz"):
                    url = router.dashboard_http.url + page
                    with urllib.request.urlopen(url, timeout=10) as resp:
                        if resp.status != 200:
                            failures.append(f"GET {url} -> {resp.status}")
        offline = analyze_fleet_dir(root, warmup=6)
        if offline.get("n_cohorts", 0) < 2:
            failures.append(f"offline pass found {offline.get('n_cohorts')} "
                            "cohort(s), expected >= 2")
        check_split(offline.get("assignments", {}), "offline")
        print(f"analytics selftest: {n_workers} workers, "
              f"{len(kinds)} workload kinds x {per_kind} streams x "
              f"{n_intervals} intervals; "
              f"live cohorts={live.get('n_cohorts', '?')}, "
              f"offline cohorts={offline.get('n_cohorts', '?')} "
              f"over {len(offline.get('stores', []))} worker store(s)")
    finally:
        shutil.rmtree(root, ignore_errors=True)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("analytics selftest PASS (live == offline cohort split)")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import Endpoint, RetryPolicy, publish_session
    from repro.util.errors import ReproError

    try:
        endpoint = Endpoint.parse(args.to)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    app = get_app(args.app)
    config = SessionConfig(interval=args.interval, ranks=args.ranks,
                           seed=args.seed, scale=args.scale)
    result = Session(app, config).run()
    print(f"{args.app}: collected {len(result.per_rank)} rank(s), "
          f"{len(result.samples(0))} snapshots/rank; publishing to {endpoint}")
    retry = RetryPolicy(max_attempts=args.max_attempts,
                        request_timeout=args.request_timeout)
    try:
        reports = publish_session(endpoint, result,
                                  stream_prefix=args.stream_prefix or args.app,
                                  retry=retry)
    except (ReproError, OSError) as exc:
        print(f"error: cannot publish to {endpoint}: {exc}")
        return 1
    for stream_id in sorted(reports):
        rep = reports[stream_id]
        status = rep.error or ("drained" if rep.drained else "not drained")
        bumpy = (f" reconnects={rep.reconnects} retries={rep.retries}"
                 if rep.reconnects or rep.retries else "")
        print(f"  {stream_id}: sent={rep.sent} processed={rep.processed} "
              f"novel={rep.novel} rejected={rep.rejected}{bumpy} [{status}]")
    return 0 if all(not r.error for r in reports.values()) else 1


def _cmd_fleet_status(args: argparse.Namespace) -> int:
    import json as _json

    from repro.service import Endpoint, PhaseClient
    from repro.util.errors import ReproError

    try:
        endpoint = Endpoint.parse(args.to)
        with PhaseClient(endpoint) as client:
            reply = client.fleet_status()
            analytics = client.fleet_analytics() if args.cohorts else None
    except (ReproError, OSError) as exc:
        print(f"error: cannot reach daemon at {args.to!r}: {exc}")
        return 1
    if not reply.ok:
        print(f"error: {reply.error}")
        return 1
    if analytics is not None and not analytics.ok:
        print(f"error: fleet_analytics: {analytics.error}")
        return 1
    status = reply.data
    if analytics is not None:
        status["analytics"] = analytics.data
    if args.json:
        print(_json.dumps(status, indent=2, sort_keys=True))
        return 0
    service = status["service"]
    print(f"incprofd @ {endpoint}: {status['n_streams']} live stream(s), "
          f"{status['registered_total']} registered, "
          f"{status['expired_total']} expired")
    print(f"  ingest {service['processed']}/{service['ingested']} processed, "
          f"{service['ingest_rate']:.0f} intervals/s, "
          f"drops={service['drops']}, lag={status['total_lag']}, "
          f"novel={status['novel_total']}")
    for phase, occ in status["phase_occupancy"].items():
        label = "novel" if phase == "-1" else f"phase {phase}"
        print(f"  {label:>9s}: {occ['intervals']:6d} intervals "
              f"({occ['share']:.1%})")
    for row in status["streams"]:
        print(f"  {row['stream_id']:>16s}: seq={row['last_seq']} "
              f"lag={row['lag']} novel={row['novel']} "
              f"idle={row['idle_seconds']:.1f}s")
    if analytics is not None:
        _print_analytics_report(analytics.data)
    return 0


def _print_analytics_report(report: dict) -> None:
    """Shared cohort/anomaly/drift rendering for ``fleet-status
    --cohorts`` and ``analyze-fleet``."""
    print(f"  cohorts: {report.get('n_cohorts', 0)} over "
          f"{report.get('n_streams', 0)} stream(s)")
    assignments = report.get("assignments", {})
    for cohort in report.get("cohorts", []):
        members = ", ".join(cohort["streams"][:6])
        if len(cohort["streams"]) > 6:
            members += f", ... ({cohort['size']} total)"
        print(f"    cohort {cohort['cohort']}: {cohort['size']} stream(s), "
              f"transition rate {cohort['mean_transition_rate']:.2f}, "
              f"novel {cohort['mean_novel_share']:.1%} [{members}]")
    anomalies = report.get("anomalies", [])
    if anomalies:
        for row in anomalies:
            print(f"    anomaly: {row['stream_id']} "
                  f"(cohort {assignments.get(row['stream_id'], '?')}, "
                  f"distance {row['distance']:.3f}, "
                  f"cohort mean {row['cohort_mean']:.3f})")
    else:
        print("    anomalies: none")
    drift_events = report.get("drift_events", [])
    if drift_events:
        for event in drift_events:
            print(f"    drift: {event['kind']} in cohort {event['cohort']} "
                  f"({len(event['streams'])} stream(s), "
                  f"window {event['window']})")
    else:
        print("    drift events: none")


def _cmd_analyze_fleet(args: argparse.Namespace) -> int:
    """Offline fleet analytics: replay per-worker archives, cluster."""
    import json as _json

    from repro.fleet.analytics import analyze_fleet_dir
    from repro.util.errors import ReproError

    kwargs = {"warmup": args.warmup}
    if args.kmax is not None:
        kwargs["kmax"] = args.kmax
    if args.drift_window is not None:
        kwargs["drift_window"] = args.drift_window
    try:
        report = analyze_fleet_dir(args.root, **kwargs)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"fleet root {report['root']}: {len(report['stores'])} worker "
          f"store(s), {report['n_streams']} replayed stream(s)")
    _print_analytics_report(report)
    for row in report.get("skipped", []):
        print(f"    skipped {row['stream_id']}: {row['reason']}")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Scrape the daemon's Prometheus text metrics over the wire protocol."""
    from repro.service import Endpoint, PhaseClient
    from repro.util.errors import ReproError

    try:
        endpoint = Endpoint.parse(args.to)
        with PhaseClient(endpoint) as client:
            text = client.metrics()
    except (ReproError, OSError) as exc:
        print(f"error: cannot reach daemon at {args.to!r}: {exc}")
        return 1
    print(text, end="" if text.endswith("\n") else "\n")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running daemon (sparkline history)."""
    import time as _time

    from repro.service import Endpoint, PhaseClient
    from repro.util.asciiplot import sparkline
    from repro.util.errors import ReproError

    try:
        endpoint = Endpoint.parse(args.to)
    except ReproError as exc:
        print(f"error: {exc}")
        return 1
    history: dict = {"rate": [], "queued": [], "processed": []}
    iteration = 0
    try:
        with PhaseClient(endpoint) as client:
            while args.iterations <= 0 or iteration < args.iterations:
                if iteration:
                    _time.sleep(args.refresh)
                iteration += 1
                stats = client.stats().data
                history["rate"].append(float(stats.get("ingest_rate", 0.0)))
                history["queued"].append(float(stats.get("queued_total", 0)))
                history["processed"].append(float(stats.get("processed", 0)))
                for series in history.values():
                    del series[:-args.width]
                latency = stats.get("classify_latency", {})
                traces = stats.get("traces", {})
                lines = [
                    f"incprofd @ {endpoint}  "
                    f"streams={stats.get('streams', 0)} "
                    f"workers={stats.get('workers', '?')} "
                    f"policy={stats.get('policy', '?')}",
                    f"  rate   {history['rate'][-1]:10.1f}/s "
                    f"{sparkline(history['rate'], width=args.width)}",
                    f"  queued {history['queued'][-1]:10.0f}   "
                    f"{sparkline(history['queued'], width=args.width)}",
                    f"  done   {history['processed'][-1]:10.0f}   "
                    f"{sparkline(history['processed'], width=args.width)}",
                    f"  drops={stats.get('drops', 0)} "
                    f"novel={stats.get('novel', 0)} "
                    f"p99={latency.get('p99', 0.0) * 1e3:.2f}ms "
                    f"traces={traces.get('finished', 0)}/"
                    f"{traces.get('started', 0)}",
                ]
                if args.clear:
                    print("\x1b[2J\x1b[H", end="")
                print("\n".join(lines))
    except (ReproError, OSError) as exc:
        print(f"error: lost daemon at {args.to!r}: {exc}")
        return 1
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_report_all(args: argparse.Namespace) -> int:
    from repro.eval.report_md import write_markdown_report

    path = write_markdown_report(args.out, workers=args.workers)
    print(f"wrote {path}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    results = run_experiments(paper_app_names(), scale=args.scale,
                              seed=args.seed, workers=args.workers)
    print(table1(results).render())
    print()
    print(table1_comparison(results).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="incprof",
        description="IncProf reproduction: phase identification for HPC workloads",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available workloads").set_defaults(func=_cmd_apps)

    p_la = sub.add_parser("list-apps",
                          help="list the full registry: name, kind, "
                               "description (incl. factory families)")
    p_la.add_argument("--kind", choices=["paper", "synthetic", "generated"],
                      default=None, help="filter by registry kind")
    p_la.add_argument("--json", action="store_true",
                      help="machine-readable output")
    p_la.set_defaults(func=_cmd_list_apps)

    p_gen = sub.add_parser("generate",
                           help="materialize generated scenarios "
                                "(specs with exact ground truth)")
    p_gen.add_argument("--n", type=int, default=5,
                       help="how many scenarios (default 5)")
    p_gen.add_argument("--tier", default="all",
                       choices=["easy", "medium", "hard", "all"],
                       help="difficulty tier (default: round-robin all)")
    p_gen.add_argument("--seed", type=int, default=0,
                       help="root seed of the population")
    p_gen.add_argument("--json", action="store_true",
                       help="print full specs as JSON")
    p_gen.add_argument("--out", default=None,
                       help="write one spec JSON file per scenario here")
    p_gen.set_defaults(func=_cmd_generate)

    p_sweep = sub.add_parser(
        "sweep-scenarios",
        help="score phase-recovery accuracy across generated scenarios")
    p_sweep.add_argument("--n", type=int, default=100,
                         help="population size (default 100)")
    p_sweep.add_argument("--seed", type=int, default=0,
                         help="root seed of the population")
    p_sweep.add_argument("--tiers", default="all",
                         help="comma-separated tiers (default: all)")
    p_sweep.add_argument("--interval", type=float, default=1.0,
                         help="collection interval in seconds")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool size for scoring")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    p_sweep.add_argument("--bench-out", default=None,
                         help="merge the distribution into this "
                              "BENCH_perf.json-style file")
    p_sweep.add_argument("--min-median", action="append", default=[],
                         metavar="TIER=VALUE",
                         help="fail (exit 1) if a tier's median label "
                              "agreement is below VALUE; repeatable")
    p_sweep.set_defaults(func=_cmd_sweep_scenarios)

    p_run = sub.add_parser("run", help="collect incremental profiles for a workload")
    p_run.add_argument("--app", required=True, type=_app_arg,
                       metavar="APP",
                       help="workload name or factory address "
                            "(e.g. graph500, scenario:seed=42,tier=hard)")
    p_run.add_argument("--out", required=True, help="sample output directory")
    p_run.add_argument("--ranks", type=int, default=1)
    p_run.add_argument("--store-format", default="loose",
                       choices=["loose", "segments"],
                       help="on-disk layout: loose per-interval gmon files "
                            "(legacy, default) or the tiered columnar "
                            "segment store")
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_an = sub.add_parser("analyze", help="analyze a directory of gmon samples")
    p_an.add_argument("samples", help="sample directory written by 'run'")
    p_an.add_argument("--rank", type=int, default=0)
    p_an.add_argument("--merge-ranks", action="store_true",
                      help="analyze the gmon.sum of all ranks instead of one rank")
    p_an.add_argument("--kselect", default="elbow",
                      choices=["elbow", "chord", "silhouette"])
    p_an.add_argument("--coverage", type=float, default=0.95)
    p_an.add_argument("--save-model", default=None, metavar="PATH",
                      help="write the trained phase model to a durable "
                           "artifact loadable by 'serve --model'")
    p_an.add_argument("--follow", action="store_true",
                      help="tail a growing sample directory: stream new "
                           "snapshots through the incremental engine, print "
                           "live phase assignments and refit events, then "
                           "finalize with the full report")
    p_an.add_argument("--poll", type=float, default=1.0,
                      help="directory poll interval in seconds (with --follow)")
    p_an.add_argument("--max-polls", type=int, default=0,
                      help="stop following after this many polls "
                           "(0 = until Ctrl-C)")
    _add_workers(p_an)
    p_an.set_defaults(func=_cmd_analyze)

    p_rep = sub.add_parser("report", help="full experiment + paper-style table")
    p_rep.add_argument("--app", required=True, choices=paper_app_names())
    p_rep.add_argument("--lift", action="store_true",
                       help="suggest call-graph lifts for discovered sites")
    p_rep.add_argument("--merge", action="store_true",
                       help="post-process: merge phases sharing site functions")
    _add_common(p_rep)
    _add_workers(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_live = sub.add_parser("live", help="profile the app's real kernels live")
    p_live.add_argument("--app", required=True, choices=paper_app_names())
    p_live.add_argument("--scale", type=float, default=1.0)
    p_live.add_argument("--interval", type=float, default=0.25)
    p_live.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_live.set_defaults(func=_cmd_live)

    p_fig = sub.add_parser("figure", help="regenerate an app's heartbeat figure")
    p_fig.add_argument("--app", required=True, choices=paper_app_names())
    _add_common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_t1 = sub.add_parser("table1", help="regenerate Table I across all apps")
    _add_common(p_t1)
    _add_workers(p_t1)
    p_t1.set_defaults(func=_cmd_table1)

    p_all = sub.add_parser("report-all",
                           help="write the full markdown reproduction report")
    p_all.add_argument("--out", default="REPORT.md")
    _add_workers(p_all)
    p_all.set_defaults(func=_cmd_report_all)

    p_script = sub.add_parser("live-script",
                              help="profile any Python script under IncProf")
    p_script.add_argument("script", help="path to a Python script")
    p_script.add_argument("args", nargs="*", help="arguments passed to the script")
    p_script.add_argument("--interval", type=float, default=0.5)
    p_script.add_argument("--out", default=None, help="sample directory")
    p_script.set_defaults(func=_cmd_live_script)

    p_merge = sub.add_parser("merge", help="sum gmon files (gprof -s)")
    p_merge.add_argument("inputs", nargs="+", help="gmon sample files")
    p_merge.add_argument("--out", required=True, help="merged output file")
    p_merge.set_defaults(func=_cmd_merge)

    p_comp = sub.add_parser(
        "compact",
        help="run retention compaction + artifact GC on an interval store")
    p_comp.add_argument("store", help="store directory (loose or segment)")
    p_comp.add_argument("--stream", default=None,
                        help="compact only this stream (default: all)")
    p_comp.add_argument("--raw-keep", type=int, default=None, metavar="N",
                        help="keep this many newest intervals at the raw "
                             "tier (default: store policy)")
    p_comp.add_argument("--vector-keep", type=int, default=None, metavar="N",
                        help="keep this many newest intervals at or above "
                             "the vector tier (default: store policy)")
    p_comp.add_argument("--gc-keep", type=int, default=2, metavar="K",
                        help="versioned .ipm/.ipckp artifacts kept per "
                             "family by GC")
    p_comp.set_defaults(func=_cmd_compact)

    p_replay = sub.add_parser(
        "replay",
        help="time-travel: re-drive a recorded window through the "
             "streaming engine")
    p_replay.add_argument("store", help="store directory (loose or segment)")
    p_replay.add_argument("--stream", default=None,
                          help="stream id (default: the store's only stream)")
    p_replay.add_argument("--t0", type=float, default=None,
                          help="window start timestamp (inclusive)")
    p_replay.add_argument("--t1", type=float, default=None,
                          help="window end timestamp (exclusive)")
    p_replay.add_argument("--warmup", type=int, default=12,
                          help="engine warmup intervals before phases emit")
    p_replay.add_argument("--drift-threshold", type=float, default=None,
                          metavar="RATE",
                          help="enable drift-triggered refits at this "
                               "novel-interval rate")
    p_replay.add_argument("--refit-cooldown", type=int, default=16,
                          help="minimum intervals between refits")
    p_replay.add_argument("--sweep", default=None, metavar="R1,R2,...",
                          help="backtest several --refit-drift-threshold "
                               "values against the recorded window and "
                               "print the comparison table")
    p_replay.add_argument("--timeline", action="store_true",
                          help="finalize the replay engine and print the "
                               "phase timeline")
    p_replay.set_defaults(func=_cmd_replay)

    p_serve = sub.add_parser("serve",
                             help="run the incprofd phase-monitoring daemon")
    p_serve.add_argument("--app", type=_app_arg, metavar="APP",
                         help="train the serving phase model on this app "
                              "(name or factory address)")
    p_serve.add_argument("--samples", help="train from a sample directory instead")
    p_serve.add_argument("--model", default=None, metavar="PATH",
                         help="serve a phase model saved by "
                              "'analyze --save-model' (skips training)")
    p_serve.add_argument("--rank", type=int, default=0,
                         help="training rank when using --samples")
    p_serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="persist daemon state here and recover it on "
                              "startup (crash-safe restarts)")
    p_serve.add_argument("--checkpoint-interval", type=float, default=2.0,
                         help="seconds between checkpoints (with "
                              "--checkpoint-dir)")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="record every ingested interval into a tiered "
                              "segment store here (compacted and GCed in "
                              "the background; replayable with 'replay')")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=9271,
                         help="TCP port (0 = ephemeral)")
    p_serve.add_argument("--unix", default=None,
                         help="listen on a unix socket path instead of TCP")
    p_serve.add_argument("--workers", type=int, default=4,
                         help="classification worker threads")
    p_serve.add_argument("--queue", type=int, default=64,
                         help="per-stream queue capacity")
    p_serve.add_argument("--policy", default="block",
                         choices=["block", "drop-oldest", "reject"],
                         help="backpressure policy for full stream queues")
    p_serve.add_argument("--idle-timeout", type=float, default=30.0,
                         help="expire streams idle longer than this (seconds)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         help="also serve Prometheus text metrics over "
                              "plain HTTP on this port (0 = ephemeral)")
    p_serve.add_argument("--dashboard-port", type=int, default=None,
                         help="serve the live analytics dashboard over "
                              "plain HTTP on this port (0 = ephemeral)")
    p_serve.add_argument("--log-level", default="info",
                         choices=["debug", "info", "warning", "error"],
                         help="structured JSON log threshold (stderr)")
    p_serve.add_argument("--refit-interval", type=float, default=None,
                         metavar="SECONDS",
                         help="enable online model refits: minimum seconds "
                              "between per-stream refits (0 = no cooldown; "
                              "omit to serve a frozen model)")
    p_serve.add_argument("--refit-drift-threshold", type=float, default=0.3,
                         metavar="RATE",
                         help="novel-interval rate over the drift window "
                              "that triggers a refit (with --refit-interval)")
    p_serve.add_argument("--worker-id", default=None, metavar="ID",
                         help="fleet identity: run as this worker of a "
                              "sharded fleet (enables ring-ownership "
                              "enforcement; normally set by serve-fleet)")
    p_serve.add_argument("--finished-capacity", type=int, default=64,
                         help="finished-stream history rows kept "
                              "(drop-oldest beyond this)")
    p_serve.add_argument("--selftest", action="store_true",
                         help="in-process smoke test: server + synthetic "
                              "publishers, assert clean shutdown")
    _add_common(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_fleet = sub.add_parser(
        "serve-fleet",
        help="shard incprofd: spawn worker daemons behind one router")
    p_fleet.add_argument("--workers", type=int, default=2,
                         help="worker daemons to spawn")
    p_fleet.add_argument("--root", default=None, metavar="DIR",
                         help="fleet root directory (sockets, per-worker "
                              "checkpoints, manifest); default: a temp dir")
    p_fleet.add_argument("--model", default=None, metavar="PATH",
                         help="phase-model artifact every worker serves")
    p_fleet.add_argument("--host", default="127.0.0.1",
                         help="router listen host")
    p_fleet.add_argument("--port", type=int, default=9270,
                         help="router TCP port (0 = ephemeral)")
    p_fleet.add_argument("--unix", default=None,
                         help="router unix socket path instead of TCP")
    p_fleet.add_argument("--mode", default="proxy",
                         choices=["proxy", "redirect"],
                         help="proxy forwards requests; redirect points "
                              "publishers at the owning worker")
    p_fleet.add_argument("--worker-threads", type=int, default=2,
                         help="classification threads per worker daemon")
    p_fleet.add_argument("--queue", type=int, default=64,
                         help="per-stream queue capacity in each worker")
    p_fleet.add_argument("--policy", default="block",
                         choices=["block", "drop-oldest", "reject"])
    p_fleet.add_argument("--idle-timeout", type=float, default=30.0)
    p_fleet.add_argument("--checkpoint-interval", type=float, default=0.5)
    p_fleet.add_argument("--max-restarts", type=int, default=1,
                         help="same-identity revivals before a dead worker "
                              "is evicted and the ring rebalances")
    p_fleet.add_argument("--archive-intervals", action="store_true",
                         help="give each worker its own tiered segment "
                              "store under worker-<id>/store (replayable "
                              "with 'incprof replay')")
    p_fleet.add_argument("--dashboard-port", type=int, default=None,
                         help="serve the fleet analytics dashboard over "
                              "plain HTTP on this port (0 = ephemeral)")
    p_fleet.add_argument("--log-level", default="info",
                         choices=["debug", "info", "warning", "error"])
    p_fleet.add_argument("--selftest", action="store_true",
                         help="fleet smoke test: spawn workers, publish "
                              "through the router, SIGKILL one worker, "
                              "assert every stream resumes")
    p_fleet.add_argument("--selftest-analytics", action="store_true",
                         help="analytics smoke test: two workload shapes "
                              "through an archiving fleet, assert the "
                              "cohort split live and offline")
    p_fleet.set_defaults(func=_cmd_serve_fleet)

    p_sub = sub.add_parser("submit",
                           help="run a workload and stream it to a daemon")
    p_sub.add_argument("--app", required=True, type=_app_arg, metavar="APP",
                       help="workload name or factory address "
                            "(e.g. scenario:seed=42,tier=hard)")
    p_sub.add_argument("--to", required=True,
                       help="daemon endpoint: HOST:PORT or unix:PATH")
    p_sub.add_argument("--ranks", type=int, default=1)
    p_sub.add_argument("--stream-prefix", default=None,
                       help="stream id prefix (default: the app name)")
    p_sub.add_argument("--max-attempts", type=int, default=6,
                       help="connection/retry attempt budget per stream")
    p_sub.add_argument("--request-timeout", type=float, default=30.0,
                       help="per-request deadline in seconds")
    _add_common(p_sub)
    p_sub.set_defaults(func=_cmd_submit)

    p_fs = sub.add_parser("fleet-status",
                          help="query a running daemon's fleet view")
    p_fs.add_argument("--to", required=True,
                      help="daemon endpoint: HOST:PORT or unix:PATH")
    p_fs.add_argument("--json", action="store_true", help="raw JSON output")
    p_fs.add_argument("--cohorts", action="store_true",
                      help="also run fleet analytics: cluster live streams "
                           "into behaviour cohorts, flag anomalies and "
                           "drift events")
    p_fs.set_defaults(func=_cmd_fleet_status)

    p_af = sub.add_parser(
        "analyze-fleet",
        help="offline fleet analytics over per-worker interval archives")
    p_af.add_argument("root",
                      help="fleet root directory (contains worker-*/store "
                           "archives from 'serve-fleet --archive-intervals')")
    p_af.add_argument("--kmax", type=int, default=None,
                      help="max cohorts to consider (default 4)")
    p_af.add_argument("--drift-window", type=int, default=None,
                      help="trailing intervals examined for drift events "
                           "(default 32)")
    p_af.add_argument("--warmup", type=int, default=12,
                      help="replay warmup intervals before the online model "
                           "starts classifying")
    p_af.add_argument("--json", action="store_true", help="raw JSON output")
    p_af.set_defaults(func=_cmd_analyze_fleet)

    p_met = sub.add_parser("metrics",
                           help="scrape a daemon's Prometheus text metrics")
    p_met.add_argument("--to", required=True,
                       help="daemon endpoint: HOST:PORT or unix:PATH")
    p_met.set_defaults(func=_cmd_metrics)

    p_top = sub.add_parser("top",
                           help="live terminal view of a running daemon")
    p_top.add_argument("--to", required=True,
                       help="daemon endpoint: HOST:PORT or unix:PATH")
    p_top.add_argument("--refresh", type=float, default=1.0,
                       help="seconds between refreshes")
    p_top.add_argument("--iterations", type=int, default=0,
                       help="stop after this many refreshes (0 = forever)")
    p_top.add_argument("--width", type=int, default=40,
                       help="sparkline history width (samples kept)")
    p_top.add_argument("--clear", action="store_true",
                       help="clear the screen between refreshes")
    p_top.set_defaults(func=_cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
