"""Command-line interface: ``incprof`` (or ``python -m repro``).

Subcommands mirror the tool's workflow:

- ``incprof run --app graph500 --out samples/`` — run a workload under
  the collector and write per-interval gmon sample files;
- ``incprof analyze samples/`` — detect phases and select sites from a
  sample directory;
- ``incprof report --app minife`` — run the full experiment in memory and
  print the paper-style table;
- ``incprof figure --app miniamr`` — print the heartbeat figure;
- ``incprof table1`` — regenerate Table I across all apps;
- ``incprof apps`` — list workloads.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.apps import get_app, paper_app_names
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.core.report import render_full_report
from repro.eval.experiments import run_experiment
from repro.eval.figures import heartbeat_figure
from repro.eval.tables import app_sites_table, comparison_table, table1, table1_comparison
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.incprof.storage import SampleStore


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale (1.0 = paper-sized run)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="experiment seed")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="IncProf collection interval in seconds")


def _cmd_apps(_args: argparse.Namespace) -> int:
    for name in paper_app_names():
        app = get_app(name)
        info = app.describe()
        live = "yes" if info["has_live_mode"] else "no"
        print(f"{name:10s} ranks={info['default_ranks']:<3} live-mode={live} "
              f"manual-sites={len(app.manual_sites)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    app = get_app(args.app)
    config = SessionConfig(
        interval=args.interval,
        ranks=args.ranks,
        seed=args.seed,
        scale=args.scale,
        store_dir=args.out,
    )
    result = Session(app, config).run()
    print(f"{args.app}: {len(result.per_rank)} rank(s), "
          f"runtime {result.runtime:.1f}s, "
          f"{len(result.samples(0))} samples/rank -> {args.out}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    store = SampleStore(args.samples, create=False)
    if args.merge_ranks:
        from repro.gprof.merge import merge_sample_series

        per_rank = [store.load_rank(rank) for rank in store.ranks()]
        snapshots = merge_sample_series(per_rank)
        label = f"{args.samples} (merged {len(per_rank)} ranks)"
    else:
        snapshots = store.load_rank(args.rank)
        label = args.samples
    config = AnalysisConfig(kselect_method=args.kselect,
                            coverage_threshold=args.coverage)
    analysis = analyze_snapshots(snapshots, config)
    print(render_full_report(analysis, app_name=label))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    result = run_experiment(args.app, scale=args.scale, seed=args.seed,
                            interval=args.interval)
    print(app_sites_table(result).render())
    print()
    from repro.core.timeline import render_timeline

    print(render_timeline(result.analysis, width=90))
    print()
    print(comparison_table(result).render())
    if args.lift:
        from repro.core.callgraph_lift import suggest_lifts

        suggestions = suggest_lifts(result.analysis)
        print()
        if suggestions:
            print("call-graph lift suggestions:")
            for suggestion in suggestions:
                print(f"  {suggestion}")
        else:
            print("call-graph lift suggestions: none")
    if args.merge:
        from repro.core.postprocess import merge_equivalent_phases

        merged = merge_equivalent_phases(result.analysis)
        print()
        print(f"site-equivalence merging: {merged.n_original} phases -> "
              f"{merged.n_phases}")
        for group in merged.merged:
            mark = " (merged)" if group.was_merged else ""
            print(f"  merged phase {group.merged_id}{mark}: "
                  f"phases {list(group.phase_ids)}, "
                  f"{group.app_pct:.1f}% of run, "
                  f"sites {sorted(group.functions)}")
    return 0


def _cmd_live(args: argparse.Namespace) -> int:
    """Profile an app's *real* NumPy kernels with the live tracer."""
    from repro.gprof.flatprofile import FlatProfile
    from repro.incprof.collector import LiveCollector
    from repro.profiler.tracing import TracingProfiler, names_filter

    app = get_app(args.app)
    live = app.live_run()
    if live is None:
        print(f"{args.app} has no live mode")
        return 1
    profiler = TracingProfiler(sample_period=0.005,
                               name_filter=names_filter(live.function_names))
    collector = LiveCollector(profiler, interval=args.interval)
    collector.start()
    with profiler:
        live.main(args.scale)
    samples = collector.stop()
    print(f"{len(samples)} live snapshots over {profiler.elapsed:.2f}s")
    print()
    print(FlatProfile.from_gmon(samples[-1]).render())
    if len(samples) >= 4:
        analysis = analyze_snapshots(
            samples, AnalysisConfig(kmax=4, drop_short_final=False)
        )
        print(render_full_report(analysis, app_name=f"{args.app} (live)"))
    return 0


def _cmd_live_script(args: argparse.Namespace) -> int:
    """Profile an arbitrary Python script (the preload-library analogue)."""
    from repro.gprof.flatprofile import FlatProfile
    from repro.incprof.script_runner import profile_script

    profile = profile_script(
        args.script,
        argv=args.args,
        interval=args.interval,
        store_dir=args.out,
    )
    print(f"{len(profile.samples)} snapshots over {profile.elapsed:.2f}s"
          + (f" -> {args.out}" if args.out else ""))
    print()
    print(FlatProfile.from_gmon(profile.final).render())
    if len(profile.samples) >= 4:
        analysis = analyze_snapshots(
            profile.samples, AnalysisConfig(kmax=4, drop_short_final=False)
        )
        print(render_full_report(analysis, app_name=args.script))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    result = run_experiment(args.app, scale=args.scale, seed=args.seed,
                            interval=args.interval)
    print(heartbeat_figure(result).render())
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    """Sum gmon sample files (gprof -s / gmon.sum semantics)."""
    from repro.gprof.gmon import read_gmon, write_gmon
    from repro.gprof.merge import merge_gmons

    snapshots = [read_gmon(path) for path in args.inputs]
    merged = merge_gmons(snapshots)
    write_gmon(merged, args.out)
    print(f"merged {len(snapshots)} profiles "
          f"({merged.total_seconds():.2f}s sampled, "
          f"{len(merged.functions())} functions) -> {args.out}")
    return 0


def _cmd_report_all(args: argparse.Namespace) -> int:
    from repro.eval.report_md import write_markdown_report

    path = write_markdown_report(args.out)
    print(f"wrote {path}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    results = {name: run_experiment(name, scale=args.scale, seed=args.seed)
               for name in paper_app_names()}
    print(table1(results).render())
    print()
    print(table1_comparison(results).render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="incprof",
        description="IncProf reproduction: phase identification for HPC workloads",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list available workloads").set_defaults(func=_cmd_apps)

    p_run = sub.add_parser("run", help="collect incremental profiles for a workload")
    p_run.add_argument("--app", required=True, choices=paper_app_names())
    p_run.add_argument("--out", required=True, help="sample output directory")
    p_run.add_argument("--ranks", type=int, default=1)
    _add_common(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_an = sub.add_parser("analyze", help="analyze a directory of gmon samples")
    p_an.add_argument("samples", help="sample directory written by 'run'")
    p_an.add_argument("--rank", type=int, default=0)
    p_an.add_argument("--merge-ranks", action="store_true",
                      help="analyze the gmon.sum of all ranks instead of one rank")
    p_an.add_argument("--kselect", default="elbow",
                      choices=["elbow", "chord", "silhouette"])
    p_an.add_argument("--coverage", type=float, default=0.95)
    p_an.set_defaults(func=_cmd_analyze)

    p_rep = sub.add_parser("report", help="full experiment + paper-style table")
    p_rep.add_argument("--app", required=True, choices=paper_app_names())
    p_rep.add_argument("--lift", action="store_true",
                       help="suggest call-graph lifts for discovered sites")
    p_rep.add_argument("--merge", action="store_true",
                       help="post-process: merge phases sharing site functions")
    _add_common(p_rep)
    p_rep.set_defaults(func=_cmd_report)

    p_live = sub.add_parser("live", help="profile the app's real kernels live")
    p_live.add_argument("--app", required=True, choices=paper_app_names())
    p_live.add_argument("--scale", type=float, default=1.0)
    p_live.add_argument("--interval", type=float, default=0.25)
    p_live.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_live.set_defaults(func=_cmd_live)

    p_fig = sub.add_parser("figure", help="regenerate an app's heartbeat figure")
    p_fig.add_argument("--app", required=True, choices=paper_app_names())
    _add_common(p_fig)
    p_fig.set_defaults(func=_cmd_figure)

    p_t1 = sub.add_parser("table1", help="regenerate Table I across all apps")
    _add_common(p_t1)
    p_t1.set_defaults(func=_cmd_table1)

    p_all = sub.add_parser("report-all",
                           help="write the full markdown reproduction report")
    p_all.add_argument("--out", default="REPORT.md")
    p_all.set_defaults(func=_cmd_report_all)

    p_script = sub.add_parser("live-script",
                              help="profile any Python script under IncProf")
    p_script.add_argument("script", help="path to a Python script")
    p_script.add_argument("args", nargs="*", help="arguments passed to the script")
    p_script.add_argument("--interval", type=float, default=0.5)
    p_script.add_argument("--out", default=None, help="sample directory")
    p_script.set_defaults(func=_cmd_live_script)

    p_merge = sub.add_parser("merge", help="sum gmon files (gprof -s)")
    p_merge.add_argument("inputs", nargs="+", help="gmon sample files")
    p_merge.add_argument("--out", required=True, help="merged output file")
    p_merge.set_defaults(func=_cmd_merge)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
