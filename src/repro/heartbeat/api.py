"""The AppEKG instrumentation API.

This mirrors the two-step API the paper converged on: an initialization
call, then ``beginHeartbeat(ID)`` / ``endHeartbeat(ID)`` pairs — each
unique ID representing one application phase.  Durations and counts are
accumulated per collection interval by
:class:`~repro.heartbeat.accumulator.HeartbeatAccumulator`; nothing is
written per heartbeat.

The time source is pluggable: live code uses ``time.perf_counter``,
simulated runs pass the virtual clock.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from repro.heartbeat.accumulator import HeartbeatAccumulator, HeartbeatRecord, Sink
from repro.util.errors import ValidationError


class AppEKG:
    """Heartbeat runtime for one process (one MPI rank)."""

    def __init__(
        self,
        num_heartbeats: int,
        rank: int = 0,
        interval: float = 1.0,
        sink: Optional[Sink] = None,
        time_source: Callable[[], float] = time.perf_counter,
    ) -> None:
        if num_heartbeats < 1:
            raise ValidationError("at least one heartbeat ID is required")
        self.num_heartbeats = num_heartbeats
        self.rank = rank
        self.time_source = time_source
        self._origin: Optional[float] = None
        self._accumulator = HeartbeatAccumulator(interval=interval, rank=rank, sink=sink)
        self._open: Dict[int, float] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    # paper-style API
    # ------------------------------------------------------------------
    def _now(self) -> float:
        t = self.time_source()
        if self._origin is None:
            self._origin = t
        return t - self._origin

    def _check_id(self, hb_id: int) -> None:
        if not 1 <= hb_id <= self.num_heartbeats:
            raise ValidationError(
                f"heartbeat id {hb_id} outside configured range 1..{self.num_heartbeats}"
            )

    def begin_heartbeat(self, hb_id: int, at: Optional[float] = None) -> None:
        """Mark the start of heartbeat ``hb_id``.

        A begin while the same ID is already open restarts it (the paper's
        runtime keeps a single begin-timestamp slot per ID).
        """
        self._check_id(hb_id)
        self._open[hb_id] = self._now() if at is None else at

    def end_heartbeat(self, hb_id: int, at: Optional[float] = None) -> None:
        """Mark the end of heartbeat ``hb_id``; unmatched ends are dropped."""
        self._check_id(hb_id)
        begin = self._open.pop(hb_id, None)
        if begin is None:
            return
        end = self._now() if at is None else at
        self._accumulator.record(hb_id, begin, end)

    def record_span(self, hb_id: int, n: float, t0: float, t1: float) -> None:
        """Record ``n`` rapid heartbeats over ``[t0, t1)`` (batch-modeled calls)."""
        self._check_id(hb_id)
        self._accumulator.record_span(hb_id, n, t0, t1)

    # camelCase aliases matching the paper's C API.
    beginHeartbeat = begin_heartbeat
    endHeartbeat = end_heartbeat

    def flush(self, at: float) -> None:
        """Flush intervals completed by time ``at`` without new events.

        Long-running processes (the ``incprofd`` daemon instrumenting its
        own pipeline) call this on a housekeeping cadence so quiet
        periods still deliver their completed intervals to the sink.
        """
        self._accumulator.flush_upto(at)

    # ------------------------------------------------------------------
    def finalize(self, now: Optional[float] = None) -> List[HeartbeatRecord]:
        """Flush trailing data; open (never-ended) heartbeats are dropped."""
        if not self._finalized:
            if now is None and self._origin is not None:
                now = self._now()
            self._accumulator.finalize(now)
            self._finalized = True
        return self._accumulator.records

    @property
    def records(self) -> List[HeartbeatRecord]:
        """Records flushed so far."""
        return self._accumulator.records

    @property
    def total_events(self) -> int:
        return self._accumulator.total_events
