"""Applying instrumentation sites to a simulated run.

Bridges discovered (or manual) sites onto the virtual engine: *body* sites
emit heartbeat begin/end at function entry/exit; *loop* sites emit one
heartbeat per loop-iteration mark inside the function; batch-modeled calls
are recorded as spans.  Each emitted event charges the engine the
configured per-event AppEKG cost, so heartbeat overhead in Table I
emerges from the workload's event rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.model import InstType, Site
from repro.heartbeat.api import AppEKG
from repro.simulate.engine import Engine, EngineObserver


@dataclass(frozen=True)
class SiteBinding:
    """A site bound to a heartbeat ID."""

    site: Site
    hb_id: int

    @property
    def function(self) -> str:
        return self.site.function

    @property
    def inst_type(self) -> InstType:
        return self.site.inst_type


def bindings_from_sites(sites: Iterable[Site]) -> List[SiteBinding]:
    """Assign heartbeat IDs to unique (function, type) sites in order.

    Matches the paper's numbering: a site repeated across phases keeps its
    ID; the same function with a different instrumentation type gets a
    fresh one (e.g. Graph500's ``run_bfs`` body=2 / loop=3).
    """
    bindings: List[SiteBinding] = []
    seen: Dict[Site, int] = {}
    for site in sites:
        if site not in seen:
            seen[site] = len(seen) + 1
            bindings.append(SiteBinding(site=site, hb_id=seen[site]))
    return bindings


class HeartbeatInstrumentation(EngineObserver):
    """Engine observer that drives an :class:`AppEKG` instance."""

    def __init__(
        self,
        engine: Engine,
        appekg: AppEKG,
        bindings: Iterable[SiteBinding],
        charge_overhead: bool = True,
    ) -> None:
        self.engine = engine
        self.appekg = appekg
        self.charge_overhead = charge_overhead
        self._body: Dict[str, List[SiteBinding]] = {}
        self._loop: Dict[str, List[SiteBinding]] = {}
        for binding in bindings:
            table = self._body if binding.inst_type is InstType.BODY else self._loop
            table.setdefault(binding.function, []).append(binding)
        # Per-function last loop-tick time for the current activation.
        self._last_tick: Dict[str, Optional[float]] = {}

    # ------------------------------------------------------------------
    def _charge(self, events: float) -> None:
        if self.charge_overhead:
            self.engine.overhead(events * self.engine.cost_model.per_heartbeat_event)

    # ------------------------------------------------------------------
    # EngineObserver protocol
    # ------------------------------------------------------------------
    def on_enter(self, func: str, t: float) -> None:
        for binding in self._body.get(func, ()):
            self.appekg.begin_heartbeat(binding.hb_id, at=t)
            self._charge(1)
        if func in self._loop:
            self._last_tick[func] = t

    def on_exit(self, func: str, t: float) -> None:
        for binding in self._body.get(func, ()):
            self.appekg.end_heartbeat(binding.hb_id, at=t)
            self._charge(1)
        if func in self._loop:
            self._last_tick[func] = None

    def on_loop_tick(self, func: str, t: float) -> None:
        loop_bindings = self._loop.get(func)
        if not loop_bindings:
            return
        prev = self._last_tick.get(func)
        if prev is not None and t > prev:
            for binding in loop_bindings:
                self.appekg.begin_heartbeat(binding.hb_id, at=prev)
                self.appekg.end_heartbeat(binding.hb_id, at=t)
                self._charge(2)
        self._last_tick[func] = t

    def on_batch_calls(self, caller: str, callee: str, n: int, t0: float, t1: float) -> None:
        for binding in self._body.get(callee, ()):
            self.appekg.record_span(binding.hb_id, n, t0, t1)
            self._charge(2 * n)
        # A loop site on a batch-modeled function behaves like per-call
        # iterations: treat the span as n loop heartbeats as well.
        for binding in self._loop.get(callee, ()):
            self.appekg.record_span(binding.hb_id, n, t0, t1)
            self._charge(2 * n)
