"""Heartbeat time-series extraction and statistics.

Turns AppEKG records into dense per-ID series over the run's intervals —
the data behind the paper's Figures 2-6 (average heartbeat duration per
interval, and heartbeat counts per interval) — plus the descriptive
statistics used to discuss them (gaps, activity spans, rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.heartbeat.accumulator import HeartbeatRecord
from repro.core.kselect import elbow_k, wcss_curve
from repro.util.asciiplot import AsciiPlot
from repro.util.errors import ValidationError


@dataclass
class HeartbeatSeries:
    """Dense per-interval series for a set of heartbeat IDs.

    ``counts[hb_id]`` and ``durations[hb_id]`` are arrays of length
    ``n_intervals`` (zero where the ID was inactive); ``labels`` maps IDs
    to display names (e.g. the instrumented function).
    """

    n_intervals: int
    interval: float
    counts: Dict[int, np.ndarray] = field(default_factory=dict)
    durations: Dict[int, np.ndarray] = field(default_factory=dict)
    labels: Dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def hb_ids(self) -> List[int]:
        return sorted(self.counts)

    def label(self, hb_id: int) -> str:
        return self.labels.get(hb_id, f"HB{hb_id}")

    def active_intervals(self, hb_id: int) -> np.ndarray:
        """Indices of intervals where the heartbeat fired."""
        return np.nonzero(self.counts[hb_id] > 0)[0]

    def activity_span(self, hb_id: int) -> Optional[Tuple[int, int]]:
        """First and last active interval (inclusive), or None if silent."""
        active = self.active_intervals(hb_id)
        if active.size == 0:
            return None
        return int(active[0]), int(active[-1])

    def gaps(self, hb_id: int) -> List[Tuple[int, int]]:
        """Inactive stretches inside the activity span (paper Fig. 2).

        Returns (start, end) inclusive interval ranges with zero count that
        lie strictly between active intervals.
        """
        span = self.activity_span(hb_id)
        if span is None:
            return []
        start, end = span
        inside = self.counts[hb_id][start : end + 1] == 0
        gaps: List[Tuple[int, int]] = []
        i = 0
        while i < inside.size:
            if inside[i]:
                j = i
                while j + 1 < inside.size and inside[j + 1]:
                    j += 1
                gaps.append((start + i, start + j))
                i = j + 1
            else:
                i += 1
        return gaps

    def total_count(self, hb_id: int) -> float:
        return float(self.counts[hb_id].sum())

    def mean_rate(self, hb_id: int) -> float:
        """Mean heartbeats per second over the whole run."""
        if self.n_intervals == 0:
            return 0.0
        return self.total_count(hb_id) / (self.n_intervals * self.interval)

    def mean_duration(self, hb_id: int) -> float:
        """Count-weighted mean heartbeat duration."""
        counts = self.counts[hb_id]
        total = counts.sum()
        if total <= 0:
            return 0.0
        return float((self.durations[hb_id] * counts).sum() / total)

    def summary(self) -> List[Dict[str, object]]:
        """One summary row per heartbeat ID."""
        rows = []
        for hb_id in self.hb_ids():
            span = self.activity_span(hb_id)
            rows.append(
                {
                    "hb_id": hb_id,
                    "label": self.label(hb_id),
                    "total_count": self.total_count(hb_id),
                    "mean_rate_per_s": self.mean_rate(hb_id),
                    "mean_duration_s": self.mean_duration(hb_id),
                    "active_intervals": int((self.counts[hb_id] > 0).sum()),
                    "first_active": span[0] if span else None,
                    "last_active": span[1] if span else None,
                    "n_gaps": len(self.gaps(hb_id)),
                }
            )
        return rows

    # ------------------------------------------------------------------
    # rendering (the paper's figures)
    # ------------------------------------------------------------------
    def duration_plot(self, title: str, width: int = 100, height: int = 16) -> AsciiPlot:
        """Average heartbeat duration per interval — the Fig. 2-6 style."""
        plot = AsciiPlot(title=title, width=width, height=height,
                         xlabel="interval (s)", ylabel="avg duration (s)")
        for hb_id in self.hb_ids():
            active = self.active_intervals(hb_id)
            plot.add_series(
                self.label(hb_id),
                active.astype(float) * self.interval,
                self.durations[hb_id][active],
            )
        return plot

    def count_plot(self, title: str, width: int = 100, height: int = 16) -> AsciiPlot:
        """Heartbeat count per interval."""
        plot = AsciiPlot(title=title, width=width, height=height,
                         xlabel="interval (s)", ylabel="count")
        for hb_id in self.hb_ids():
            active = self.active_intervals(hb_id)
            plot.add_series(
                self.label(hb_id),
                active.astype(float) * self.interval,
                self.counts[hb_id][active],
            )
        return plot


@dataclass(frozen=True)
class PhaseAssignment:
    """Per-interval phase labels derived from heartbeat behaviour alone."""

    k: int
    labels: np.ndarray  # length n_intervals, values in [0, k)
    inertia: float

    def phase_sequence(self) -> List[int]:
        return [int(v) for v in self.labels]


def phase_assignment(
    series: HeartbeatSeries,
    kmax: int = 6,
    seed: int = 0,
) -> PhaseAssignment:
    """Cluster a run's intervals into phases from its heartbeat series.

    This closes the dogfooding loop: any heartbeat CSV — including the
    one ``incprofd`` emits about itself — becomes a feature matrix (per
    interval: count and average duration of every heartbeat ID, each
    column z-normalized) and goes through the paper's own pipeline, a
    WCSS sweep plus the elbow criterion, to a per-interval phase label.
    """
    ids = series.hb_ids()
    if not ids or series.n_intervals < 1:
        raise ValidationError("phase assignment needs a non-empty series")
    columns = []
    for hb_id in ids:
        columns.append(series.counts[hb_id])
        columns.append(series.durations[hb_id])
    matrix = np.stack(columns, axis=1).astype(float)
    mean = matrix.mean(axis=0)
    std = matrix.std(axis=0)
    std[std == 0] = 1.0  # constant columns carry no signal; leave centred
    matrix = (matrix - mean) / std
    results = wcss_curve(matrix, kmax=max(1, min(kmax, series.n_intervals)),
                         seed=seed)
    k = elbow_k(results)
    best = results[k]
    return PhaseAssignment(k=k, labels=best.labels,
                           inertia=float(best.inertia))


def series_from_records(
    records: Iterable[HeartbeatRecord],
    n_intervals: Optional[int] = None,
    interval: float = 1.0,
    labels: Optional[Dict[int, str]] = None,
    rank: Optional[int] = None,
) -> HeartbeatSeries:
    """Build dense series from flushed records.

    ``rank`` filters to one process (the paper plots one representative
    rank); ``n_intervals`` defaults to one past the last seen index.
    """
    rows = [r for r in records if rank is None or r.rank == rank]
    if n_intervals is None:
        n_intervals = (max((r.interval_index for r in rows), default=-1)) + 1
    if n_intervals < 0:
        raise ValidationError("n_intervals must be non-negative")

    series = HeartbeatSeries(n_intervals=n_intervals, interval=interval,
                             labels=dict(labels or {}))
    for record in rows:
        if record.interval_index >= n_intervals:
            continue
        if record.hb_id not in series.counts:
            series.counts[record.hb_id] = np.zeros(n_intervals)
            series.durations[record.hb_id] = np.zeros(n_intervals)
        series.counts[record.hb_id][record.interval_index] += record.count
        series.durations[record.hb_id][record.interval_index] = record.avg_duration
    return series
