"""Heartbeat record sinks.

A sink is any callable taking a
:class:`~repro.heartbeat.accumulator.HeartbeatRecord`.  AppEKG calls the
sink once per (interval, heartbeat-id) — the interval-accumulated output
rate that keeps the framework production-safe.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Union

from repro.heartbeat.accumulator import HeartbeatRecord

CSV_FIELDS = ["rank", "hb_id", "interval_index", "time", "count",
              "avg_duration", "min_duration", "max_duration"]


class MemorySink:
    """Collects records in a list (tests, in-process analysis)."""

    def __init__(self) -> None:
        self.records: List[HeartbeatRecord] = []

    def __call__(self, record: HeartbeatRecord) -> None:
        self.records.append(record)


class NullSink:
    """Discards records but counts them (overhead experiments)."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, record: HeartbeatRecord) -> None:
        self.count += 1


class CSVSink:
    """Appends one CSV row per record, AppEKG's stand-alone output mode."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._fh = open(self.path, "w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(CSV_FIELDS)

    def __call__(self, record: HeartbeatRecord) -> None:
        self._writer.writerow(
            [
                record.rank,
                record.hb_id,
                record.interval_index,
                f"{record.time:.6f}",
                f"{record.count:.4f}",
                f"{record.avg_duration:.6f}",
                # An unobserved minimum is an empty cell, not "0.000000".
                ("" if record.min_duration is None
                 else f"{record.min_duration:.6f}"),
                f"{record.max_duration:.6f}",
            ]
        )

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CSVSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_csv_records(path: Union[str, Path]) -> List[HeartbeatRecord]:
    """Load records written by :class:`CSVSink`."""
    records: List[HeartbeatRecord] = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            # Empty/missing minimum cells mean "not observed" (None) —
            # coercing them to 0.0 would poison any downstream min-merge.
            raw_min = row.get("min_duration")
            records.append(
                HeartbeatRecord(
                    rank=int(row["rank"]),
                    hb_id=int(row["hb_id"]),
                    interval_index=int(row["interval_index"]),
                    time=float(row["time"]),
                    count=float(row["count"]),
                    avg_duration=float(row["avg_duration"]),
                    min_duration=float(raw_min) if raw_min else None,
                    max_duration=float(row.get("max_duration") or 0.0),
                )
            )
    return records
