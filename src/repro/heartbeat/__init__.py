"""AppEKG: the heartbeat instrumentation framework.

The paper's production-side companion to IncProf: a two-step
``beginHeartbeat(ID)`` / ``endHeartbeat(ID)`` API whose runtime does *not*
record individual heartbeats but accumulates count and mean duration per
collection interval, writing one row per interval — the property that
keeps production overhead negligible.

- :mod:`repro.heartbeat.api` — the public instrumentation API;
- :mod:`repro.heartbeat.accumulator` — per-interval aggregation;
- :mod:`repro.heartbeat.output` — sinks (memory, CSV, LDMS transport);
- :mod:`repro.heartbeat.instrument` — applies instrumentation sites
  (discovered or manual) to a simulated engine run;
- :mod:`repro.heartbeat.analysis` — heartbeat time-series extraction and
  the statistics behind the paper's Figures 2-6.
"""

from repro.heartbeat.api import AppEKG
from repro.heartbeat.accumulator import HeartbeatAccumulator, HeartbeatRecord
from repro.heartbeat.output import MemorySink, CSVSink, NullSink
from repro.heartbeat.ldms import LDMSTransport
from repro.heartbeat.instrument import HeartbeatInstrumentation, SiteBinding
from repro.heartbeat.analysis import HeartbeatSeries, series_from_records
from repro.heartbeat.compare import ComparisonReport, HeartbeatDelta, compare_series
from repro.heartbeat.history import HeartbeatHistory, RunInfo

__all__ = [
    "AppEKG",
    "HeartbeatAccumulator",
    "HeartbeatRecord",
    "MemorySink",
    "CSVSink",
    "NullSink",
    "LDMSTransport",
    "HeartbeatInstrumentation",
    "SiteBinding",
    "HeartbeatSeries",
    "series_from_records",
    "ComparisonReport",
    "HeartbeatDelta",
    "compare_series",
    "HeartbeatHistory",
    "RunInfo",
]
