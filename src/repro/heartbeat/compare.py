"""Run-to-run heartbeat comparison.

The paper's motivation for heartbeats is production observability: "as a
history of an application is built up this data can be used to identify
when the application is running poorly and when it is running well."
This module implements that analysis for a pair of runs: per heartbeat
ID, compare rates and durations between a *baseline* and a *candidate*
series, score the change against the baseline's own per-interval
variability (a z-score), and flag regressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.heartbeat.analysis import HeartbeatSeries
from repro.util.errors import ValidationError
from repro.util.tables import Table


@dataclass(frozen=True)
class HeartbeatDelta:
    """The change in one heartbeat's behaviour between two runs."""

    hb_id: int
    label: str
    baseline_rate: float
    candidate_rate: float
    baseline_duration: float
    candidate_duration: float
    duration_zscore: float

    @property
    def rate_ratio(self) -> float:
        if self.baseline_rate == 0:
            return float("inf") if self.candidate_rate > 0 else 1.0
        return self.candidate_rate / self.baseline_rate

    @property
    def duration_ratio(self) -> float:
        if self.baseline_duration == 0:
            return float("inf") if self.candidate_duration > 0 else 1.0
        return self.candidate_duration / self.baseline_duration


@dataclass(frozen=True)
class ComparisonReport:
    """All per-heartbeat deltas plus regression verdicts."""

    deltas: List[HeartbeatDelta]
    duration_tolerance: float
    zscore_threshold: float

    def regressions(self) -> List[HeartbeatDelta]:
        """Heartbeats that got meaningfully slower.

        A regression needs both a practically relevant slowdown (duration
        ratio beyond the tolerance) and statistical support (the shift
        exceeds the z-score threshold against baseline variability).
        """
        return [
            d for d in self.deltas
            if d.duration_ratio > 1.0 + self.duration_tolerance
            and d.duration_zscore > self.zscore_threshold
        ]

    def is_healthy(self) -> bool:
        return not self.regressions()

    def to_table(self) -> Table:
        table = Table(
            headers=["HB", "site", "rate (base→cand /s)", "avg dur (base→cand s)",
                     "dur ratio", "z", "verdict"],
            title="Heartbeat run comparison",
            float_fmt=".3g",
        )
        flagged = {d.hb_id for d in self.regressions()}
        for d in self.deltas:
            table.add_row(
                d.hb_id,
                d.label,
                f"{d.baseline_rate:.2f} → {d.candidate_rate:.2f}",
                f"{d.baseline_duration:.4f} → {d.candidate_duration:.4f}",
                d.duration_ratio,
                d.duration_zscore,
                "REGRESSION" if d.hb_id in flagged else "ok",
            )
        return table


def _duration_stats(series: HeartbeatSeries, hb_id: int):
    counts = series.counts[hb_id]
    durations = series.durations[hb_id]
    active = counts > 0
    if not active.any():
        return 0.0, 0.0
    values = durations[active]
    return float(values.mean()), float(values.std())


def compare_series(
    baseline: HeartbeatSeries,
    candidate: HeartbeatSeries,
    duration_tolerance: float = 0.10,
    zscore_threshold: float = 3.0,
) -> ComparisonReport:
    """Compare two runs' heartbeat series (matched by heartbeat ID).

    IDs present in only one run are ignored — instrumentation must match
    for a meaningful comparison; raise if there is no overlap at all.
    """
    common = sorted(set(baseline.counts) & set(candidate.counts))
    if not common:
        raise ValidationError("the two series share no heartbeat IDs")

    deltas: List[HeartbeatDelta] = []
    for hb_id in common:
        base_mean, base_std = _duration_stats(baseline, hb_id)
        cand_mean, _cand_std = _duration_stats(candidate, hb_id)
        spread = max(base_std, 1e-12)
        z = (cand_mean - base_mean) / spread
        deltas.append(
            HeartbeatDelta(
                hb_id=hb_id,
                label=baseline.label(hb_id),
                baseline_rate=baseline.mean_rate(hb_id),
                candidate_rate=candidate.mean_rate(hb_id),
                baseline_duration=base_mean,
                candidate_duration=cand_mean,
                duration_zscore=float(z),
            )
        )
    return ComparisonReport(
        deltas=deltas,
        duration_tolerance=duration_tolerance,
        zscore_threshold=zscore_threshold,
    )
