"""Per-interval heartbeat accumulation.

AppEKG's core efficiency property: heartbeats are *not* logged
individually.  Each completed heartbeat updates an in-memory
(count, duration-sum) cell for its ID; when time crosses a collection
interval boundary the cells are flushed as one record per active ID.

A heartbeat belongs to the interval its **end** falls in — the paper
relies on this ("these heartbeats do not show up in all the intervals,
only those that they finish in") to explain the gaps in Figure 2's
manual-site series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class HeartbeatRecord:
    """One flushed row: heartbeat activity of one ID in one interval.

    ``min_duration``/``max_duration`` extend the paper's count+mean
    accumulation at no extra I/O (still one row per interval); they make
    per-interval variability visible to downstream analyses.

    ``min_duration`` is ``None`` when no minimum was observed (a record
    from a source that predates the field).  ``None`` — not ``0.0`` — is
    the sentinel: a downstream min-merge must treat a missing minimum as
    the merge identity (+inf), never as a genuinely observed 0-second
    beat.  :meth:`min_duration_or_inf` gives the merge-ready value.
    """

    rank: int
    hb_id: int
    interval_index: int
    time: float  # interval end time
    count: float  # float: batch spans distribute fractionally
    avg_duration: float
    min_duration: Optional[float] = None
    max_duration: float = 0.0

    @property
    def duration_sum(self) -> float:
        return self.count * self.avg_duration

    def min_duration_or_inf(self) -> float:
        """The observed minimum, or +inf when none was recorded."""
        return math.inf if self.min_duration is None else self.min_duration


Sink = Callable[[HeartbeatRecord], None]


class HeartbeatAccumulator:
    """Accumulates heartbeat completions into per-interval records.

    Events must arrive in non-decreasing end-time order (true for both the
    virtual engine and a single live thread).
    """

    def __init__(self, interval: float, rank: int = 0, sink: Optional[Sink] = None) -> None:
        if interval <= 0:
            raise ValidationError("collection interval must be positive")
        self.interval = interval
        self.rank = rank
        self.sink = sink
        self._current_index = 0
        self._counts: Dict[int, float] = {}
        self._durations: Dict[int, float] = {}
        self._min: Dict[int, float] = {}
        self._max: Dict[int, float] = {}
        self.records: List[HeartbeatRecord] = []
        self.total_events = 0

    # ------------------------------------------------------------------
    def _index_of(self, t: float) -> int:
        return int(math.floor(t / self.interval + 1e-9))

    def _flush_through(self, index: int) -> None:
        """Flush all intervals strictly before ``index``."""
        while self._current_index < index:
            self._emit_current()
            self._current_index += 1

    def _emit_current(self) -> None:
        if not self._counts:
            return
        end_time = (self._current_index + 1) * self.interval
        for hb_id in sorted(self._counts):
            count = self._counts[hb_id]
            if count <= 0:
                continue
            record = HeartbeatRecord(
                rank=self.rank,
                hb_id=hb_id,
                interval_index=self._current_index,
                time=end_time,
                count=count,
                avg_duration=self._durations[hb_id] / count,
                # None (not 0.0) when no minimum was tracked: a missing
                # minimum must stay "unknown" through any min-merge.
                min_duration=self._min.get(hb_id),
                max_duration=self._max.get(hb_id, 0.0),
            )
            self.records.append(record)
            if self.sink is not None:
                self.sink(record)
        self._counts.clear()
        self._durations.clear()
        self._min.clear()
        self._max.clear()

    # ------------------------------------------------------------------
    def record(self, hb_id: int, t_begin: float, t_end: float) -> None:
        """Record one completed heartbeat."""
        if t_end < t_begin:
            raise ValidationError("heartbeat ended before it began")
        self._flush_through(self._index_of(t_end))
        self._counts[hb_id] = self._counts.get(hb_id, 0.0) + 1.0
        duration = t_end - t_begin
        self._durations[hb_id] = self._durations.get(hb_id, 0.0) + duration
        self._min[hb_id] = min(self._min.get(hb_id, duration), duration)
        self._max[hb_id] = max(self._max.get(hb_id, duration), duration)
        self.total_events += 1

    def record_span(self, hb_id: int, n: float, t0: float, t1: float) -> None:
        """Record ``n`` rapid heartbeats spread uniformly over ``[t0, t1)``.

        Used for batch-modeled calls: counts are apportioned to each
        overlapped interval by time fraction, each with mean duration
        ``(t1 - t0) / n``.
        """
        if n <= 0:
            raise ValidationError("span requires positive count")
        if t1 < t0:
            raise ValidationError("span end precedes start")
        if t1 == t0:
            self.record(hb_id, t0, t1)
            # record() counts a single event; add the remaining n - 1.
            self._counts[hb_id] += n - 1
            self.total_events += int(n) - 1
            return
        per_duration = (t1 - t0) / n
        first = self._index_of(t0)
        last = self._index_of(t1 - 1e-12)
        for idx in range(first, last + 1):
            seg_start = max(t0, idx * self.interval)
            seg_end = min(t1, (idx + 1) * self.interval)
            share = n * (seg_end - seg_start) / (t1 - t0)
            if share <= 0:
                continue
            self._flush_through(idx)
            self._counts[hb_id] = self._counts.get(hb_id, 0.0) + share
            self._durations[hb_id] = self._durations.get(hb_id, 0.0) + share * per_duration
            self._min[hb_id] = min(self._min.get(hb_id, per_duration), per_duration)
            self._max[hb_id] = max(self._max.get(hb_id, per_duration), per_duration)
        self.total_events += int(n)

    def flush_upto(self, now: float) -> None:
        """Flush every interval that ended at or before ``now``.

        Long-lived users (the ``incprofd`` self-instrumentation) call
        this on a housekeeping cadence so completed intervals reach the
        sink even when no new heartbeat arrives to trigger the flush.
        """
        self._flush_through(self._index_of(now))

    def finalize(self, now: Optional[float] = None) -> List[HeartbeatRecord]:
        """Flush the trailing partial interval and return all records."""
        if now is not None:
            self._flush_through(self._index_of(now))
        self._emit_current()
        return self.records


def merge_records(records: List[HeartbeatRecord],
                  rank: Optional[int] = None) -> List[HeartbeatRecord]:
    """Merge records sharing ``(hb_id, interval_index)`` into one row each.

    The fleet view: many ranks (or many flushes) report the same
    heartbeat in the same interval; the merged row sums counts, weights
    the mean by count, and min/max-merges the extremes.  A ``None``
    minimum is the merge identity — it never drags the merged minimum to
    zero — and the merged minimum is ``None`` only when *no* input
    observed one.  Output is sorted by ``(interval_index, hb_id)``.
    """
    merged: Dict[tuple, HeartbeatRecord] = {}
    for rec in records:
        key = (rec.interval_index, rec.hb_id)
        prev = merged.get(key)
        if prev is None:
            merged[key] = rec
            continue
        count = prev.count + rec.count
        avg = ((prev.duration_sum + rec.duration_sum) / count
               if count > 0 else 0.0)
        low = min(prev.min_duration_or_inf(), rec.min_duration_or_inf())
        if rank is not None:
            merged_rank = rank
        else:
            merged_rank = prev.rank if prev.rank == rec.rank else -1
        merged[key] = HeartbeatRecord(
            rank=merged_rank,
            hb_id=rec.hb_id,
            interval_index=rec.interval_index,
            time=max(prev.time, rec.time),
            count=count,
            avg_duration=avg,
            min_duration=None if math.isinf(low) else low,
            max_duration=max(prev.max_duration, rec.max_duration),
        )
    return [merged[key] for key in sorted(merged)]
