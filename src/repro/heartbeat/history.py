"""Persistent heartbeat run history.

The paper's deployment story: heartbeat data accumulates over "the
repeated use of the application by users" and the resulting history
reveals when the application runs well or poorly.  This module is that
store: one directory per application, one CSV per run (via the existing
:class:`~repro.heartbeat.output.CSVSink` format plus a small metadata
sidecar), with loading, trend extraction, and baseline selection for
:func:`~repro.heartbeat.compare.compare_series`.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.heartbeat.accumulator import HeartbeatRecord
from repro.heartbeat.analysis import HeartbeatSeries, series_from_records
from repro.heartbeat.compare import ComparisonReport, compare_series
from repro.heartbeat.output import CSV_FIELDS, read_csv_records
from repro.util.errors import ValidationError

_RUN_RE = re.compile(r"^run-(?P<index>\d{5})\.csv$")


@dataclass(frozen=True)
class RunInfo:
    """Metadata of one recorded run."""

    index: int
    path: Path
    timestamp: float
    labels: Dict[int, str] = field(default_factory=dict)
    tags: Dict[str, str] = field(default_factory=dict)


class HeartbeatHistory:
    """Directory-backed history of heartbeat runs for one application."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise ValidationError(f"history directory {self.directory} missing")

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_run(
        self,
        records: Sequence[HeartbeatRecord],
        labels: Optional[Dict[int, str]] = None,
        tags: Optional[Dict[str, str]] = None,
        timestamp: Optional[float] = None,
    ) -> RunInfo:
        """Append one run to the history."""
        if not records:
            raise ValidationError("refusing to record an empty run")
        index = (self.run_indices()[-1] + 1) if self.run_indices() else 0
        path = self.directory / f"run-{index:05d}.csv"
        with open(path, "w") as fh:
            fh.write(",".join(CSV_FIELDS) + "\n")
            for r in records:
                low = "" if r.min_duration is None else f"{r.min_duration:.6f}"
                fh.write(f"{r.rank},{r.hb_id},{r.interval_index},"
                         f"{r.time:.6f},{r.count:.4f},{r.avg_duration:.6f},"
                         f"{low},{r.max_duration:.6f}\n")
        meta = {
            "timestamp": time.time() if timestamp is None else timestamp,
            "labels": {str(k): v for k, v in (labels or {}).items()},
            "tags": tags or {},
        }
        path.with_suffix(".json").write_text(json.dumps(meta, indent=2))
        return self._info(index, path)

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    def run_indices(self) -> List[int]:
        indices = []
        for path in self.directory.glob("run-*.csv"):
            match = _RUN_RE.match(path.name)
            if match:
                indices.append(int(match.group("index")))
        return sorted(indices)

    def _info(self, index: int, path: Path) -> RunInfo:
        meta_path = path.with_suffix(".json")
        timestamp, labels, tags = 0.0, {}, {}
        if meta_path.exists():
            meta = json.loads(meta_path.read_text())
            timestamp = float(meta.get("timestamp", 0.0))
            labels = {int(k): v for k, v in meta.get("labels", {}).items()}
            tags = dict(meta.get("tags", {}))
        return RunInfo(index=index, path=path, timestamp=timestamp,
                       labels=labels, tags=tags)

    def runs(self) -> List[RunInfo]:
        return [self._info(i, self.directory / f"run-{i:05d}.csv")
                for i in self.run_indices()]

    def load_series(self, index: int, interval: float = 1.0,
                    rank: Optional[int] = 0) -> HeartbeatSeries:
        info = self._info(index, self.directory / f"run-{index:05d}.csv")
        if not info.path.exists():
            raise ValidationError(f"no run {index} in {self.directory}")
        records = read_csv_records(info.path)
        return series_from_records(records, interval=interval,
                                   labels=info.labels, rank=rank)

    # ------------------------------------------------------------------
    # analysis over the history
    # ------------------------------------------------------------------
    def duration_trend(self, hb_id: int, interval: float = 1.0) -> List[float]:
        """Mean heartbeat duration of ``hb_id`` across runs, in run order."""
        trend = []
        for index in self.run_indices():
            series = self.load_series(index, interval=interval)
            if hb_id in series.counts:
                trend.append(series.mean_duration(hb_id))
        return trend

    def compare_latest_to_baseline(
        self,
        baseline_index: Optional[int] = None,
        interval: float = 1.0,
        **compare_kwargs,
    ) -> ComparisonReport:
        """Compare the newest run against a baseline (default: run 0)."""
        indices = self.run_indices()
        if len(indices) < 2:
            raise ValidationError("need at least two recorded runs to compare")
        base_idx = indices[0] if baseline_index is None else baseline_index
        baseline = self.load_series(base_idx, interval=interval)
        candidate = self.load_series(indices[-1], interval=interval)
        return compare_series(baseline, candidate, **compare_kwargs)
