"""A lightweight LDMS-style transport.

The paper integrates AppEKG with LDMS, whose model is: applications update
an in-memory *metric set*; a system-side sampler pulls the set on its own
schedule and forwards it to storage.  This module reproduces that pull
model in-process so the examples and overhead experiments exercise the
same decoupled path (app-side updates are O(1); delivery happens on the
sampler's clock, not the app's).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Tuple

from repro.heartbeat.accumulator import HeartbeatRecord

Subscriber = Callable[[List[HeartbeatRecord]], None]


class LDMSTransport:
    """In-process metric-set transport with explicit sampler pulls.

    Use the transport itself as the AppEKG sink; call :meth:`sample` from
    the "system side" (e.g. once per collection interval) to drain the
    metric set to subscribers.

    Thread-safe: in the real deployment the sampler runs on its own
    thread (the ``incprofd`` housekeeping loop plays that role), so
    app-side :meth:`__call__` and sampler-side :meth:`sample` race on the
    pending list; a lock makes update-vs-drain atomic, guaranteeing every
    record is delivered exactly once.  Subscriber callbacks run *outside*
    the lock — a slow subscriber must not block the app side.
    """

    def __init__(self) -> None:
        self._pending: List[HeartbeatRecord] = []
        self._subscribers: List[Subscriber] = []
        self._lock = threading.Lock()
        self.updates = 0
        self.samples_taken = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    # app side (sink protocol)
    # ------------------------------------------------------------------
    def __call__(self, record: HeartbeatRecord) -> None:
        with self._lock:
            self._pending.append(record)
            self.updates += 1

    # ------------------------------------------------------------------
    # system side
    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        with self._lock:
            self._subscribers.append(subscriber)

    def sample(self) -> List[HeartbeatRecord]:
        """Pull and clear the metric set, forwarding to subscribers."""
        with self._lock:
            batch, self._pending = self._pending, []
            self.samples_taken += 1
            self.delivered += len(batch)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(batch)
        return batch

    def pending_metrics(self) -> Dict[Tuple[int, int], float]:
        """Current metric-set view: (rank, hb_id) -> latest count."""
        view: Dict[Tuple[int, int], float] = {}
        with self._lock:
            pending = list(self._pending)
        for record in pending:
            view[(record.rank, record.hb_id)] = record.count
        return view
