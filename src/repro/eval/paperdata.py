"""The paper's published evaluation numbers (for comparison only).

These constants transcribe Tables I-VI of the paper.  The benchmark
harness prints them next to the regenerated values so EXPERIMENTS.md can
record paper-vs-measured for every table and figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.model import InstType


@dataclass(frozen=True)
class PaperTable1Row:
    """One row of Table I (experimental overview)."""

    app: str
    procs: int
    nodes: int
    uninstrumented_runtime_s: float
    incprof_overhead_pct: float
    heartbeat_overhead_pct: float
    n_phases: int


TABLE1: Dict[str, PaperTable1Row] = {
    "graph500": PaperTable1Row("graph500", 1, 1, 188, 10.1, 1.6, 4),
    "minife": PaperTable1Row("minife", 16, 2, 617, -6.2, 1.1, 5),
    "miniamr": PaperTable1Row("miniamr", 16, 2, 459, 1.5, 0.2, 2),
    "lammps": PaperTable1Row("lammps", 16, 2, 307, 7.5, 8.1, 4),
    "gadget2": PaperTable1Row("gadget2", 16, 2, 421, 6.4, 1.0, 3),
}


@dataclass(frozen=True)
class PaperSiteRow:
    """One discovered-site row of Tables II-VI."""

    phase_id: int
    hb_id: int
    function: str
    phase_pct: float
    app_pct: Optional[float]
    inst_type: InstType


#: Discovered instrumentation sites, Tables II-VI.
SITES: Dict[str, Tuple[PaperSiteRow, ...]] = {
    "graph500": (
        PaperSiteRow(0, 1, "validate_bfs_result", 98.1, 62.2, InstType.LOOP),
        PaperSiteRow(1, 2, "run_bfs", 100.0, 13.2, InstType.BODY),
        PaperSiteRow(2, 3, "run_bfs", 100.0, 12.3, InstType.LOOP),
        PaperSiteRow(3, 4, "make_one_edge", 97.2, 10.8, InstType.BODY),
    ),
    "minife": (
        PaperSiteRow(0, 1, "sum_in_symm_elem_matrix", 100.0, 19.5, InstType.BODY),
        PaperSiteRow(1, 2, "cg_solve", 100.0, 43.7, InstType.LOOP),
        PaperSiteRow(2, 3, "init_matrix", 93.2, 10.1, InstType.LOOP),
        PaperSiteRow(2, 4, "generate_matrix_structure", 6.8, 0.7, InstType.LOOP),
        PaperSiteRow(3, 5, "impose_dirichlet", 100.0, 4.4, InstType.LOOP),
        PaperSiteRow(4, 2, "cg_solve", 94.7, 20.5, InstType.LOOP),
        PaperSiteRow(4, 6, "make_local_matrix", 2.7, 0.6, InstType.LOOP),
    ),
    "miniamr": (
        PaperSiteRow(0, 1, "check_sum", 100.0, 89.1, InstType.BODY),
        PaperSiteRow(1, 2, "allocate", 33.8, 3.7, InstType.LOOP),
        PaperSiteRow(1, 3, "pack_block", 32.4, 3.5, InstType.BODY),
        PaperSiteRow(1, 4, "unpack_block", 26.5, 2.9, InstType.BODY),
    ),
    "lammps": (
        PaperSiteRow(0, 1, "PairLJCut::compute", 100.0, 55.7, InstType.LOOP),
        PaperSiteRow(1, 2, "NPairHalfBinNewtonTri::build", 100.0, 7.7, InstType.LOOP),
        PaperSiteRow(2, 1, "PairLJCut::compute", 100.0, 34.1, InstType.LOOP),
        PaperSiteRow(3, 2, "NPairHalfBinNewtonTri::build", 50.0, 1.3, InstType.BODY),
        PaperSiteRow(3, 4, "Velocity::create", 42.9, 1.1, InstType.LOOP),
    ),
    "gadget2": (
        PaperSiteRow(0, 1, "force_treeevaluate_shortrange", 100.0, 44.9, InstType.BODY),
        PaperSiteRow(1, 2, "pm_setup_nonperiodic_kernel", 93.8, 28.6, InstType.BODY),
        PaperSiteRow(1, 3, "force_update_node_recursive", 5.9, 1.8, InstType.BODY),
        PaperSiteRow(2, 1, "force_treeevaluate_shortrange", 100.0, 24.7, InstType.BODY),
    ),
}


def paper_function_share(app: str, function: str) -> float:
    """Total App % the paper attributes to ``function`` across phases."""
    return sum(r.app_pct or 0.0 for r in SITES.get(app, ()) if r.function == function)


def paper_site_set(app: str) -> set:
    """The paper's set of (function, inst_type) discovered sites."""
    return {(r.function, r.inst_type) for r in SITES.get(app, ())}
