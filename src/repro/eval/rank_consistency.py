"""Cross-rank analysis consistency.

The paper analyzes one representative MPI rank and argues this suffices
because "all of the applications being used are symmetrically parallel
and thus all processes behave similarly", keeping the other ranks' data
for "aggregate descriptive statistics".  This module checks that premise
quantitatively: run the analysis on *every* rank's profile stream and
measure how consistently phase counts and discovered site sets agree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.apps.base import AppModel
from repro.core.model import InstType
from repro.core.pipeline import AnalysisConfig, AnalysisResult, analyze_snapshots
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.simulate.mpi import SimComm
from repro.util.errors import ValidationError
from repro.util.tables import Table

SiteKey = Tuple[str, InstType]


@dataclass(frozen=True)
class RankConsistency:
    """Agreement of per-rank analyses for one application."""

    app_name: str
    n_ranks: int
    phase_counts: Tuple[int, ...]
    site_sets: Tuple[frozenset, ...]
    runtime_imbalance: float

    @property
    def phase_count_agreement(self) -> float:
        """Fraction of ranks whose phase count matches the modal count."""
        counts: Dict[int, int] = {}
        for k in self.phase_counts:
            counts[k] = counts.get(k, 0) + 1
        return max(counts.values()) / self.n_ranks

    @property
    def modal_phase_count(self) -> int:
        counts: Dict[int, int] = {}
        for k in self.phase_counts:
            counts[k] = counts.get(k, 0) + 1
        return max(counts, key=counts.get)

    def mean_site_jaccard(self) -> float:
        """Mean pairwise Jaccard similarity of per-rank site sets."""
        if self.n_ranks < 2:
            return 1.0
        total, pairs = 0.0, 0
        for i in range(self.n_ranks):
            for j in range(i + 1, self.n_ranks):
                a, b = self.site_sets[i], self.site_sets[j]
                union = a | b
                total += (len(a & b) / len(union)) if union else 1.0
                pairs += 1
        return total / pairs

    def common_sites(self) -> Set[SiteKey]:
        """Sites discovered on every rank."""
        common = set(self.site_sets[0])
        for sites in self.site_sets[1:]:
            common &= sites
        return common

    def to_table(self) -> Table:
        table = Table(
            headers=["rank", "phases", "sites"],
            title=f"{self.app_name}: per-rank analysis agreement",
        )
        for rank, (k, sites) in enumerate(zip(self.phase_counts, self.site_sets)):
            table.add_row(
                rank, k,
                ", ".join(sorted(f"{f}[{t.value}]" for f, t in sites)),
            )
        return table


def analyze_all_ranks(
    app: AppModel,
    ranks: int = 4,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    config: AnalysisConfig = AnalysisConfig(),
) -> RankConsistency:
    """Collect and analyze every rank of a symmetric run."""
    if ranks < 1:
        raise ValidationError("need at least one rank")
    session = Session(app, SessionConfig(ranks=ranks, scale=scale, seed=seed))
    result = session.run()

    phase_counts: List[int] = []
    site_sets: List[frozenset] = []
    for rank_result in result.per_rank:
        analysis: AnalysisResult = analyze_snapshots(rank_result.samples, config)
        phase_counts.append(analysis.n_phases)
        site_sets.append(
            frozenset((s.function, s.inst_type) for s in analysis.sites())
        )

    stats = SimComm.runtime_stats(result.per_rank)
    return RankConsistency(
        app_name=app.name,
        n_ranks=ranks,
        phase_counts=tuple(phase_counts),
        site_sets=tuple(site_sets),
        runtime_imbalance=stats["imbalance"],
    )
