"""Evaluation harness: regenerates every table and figure in the paper.

- :mod:`repro.eval.paperdata` — the published numbers (Tables I-VI) as
  constants, for side-by-side comparison;
- :mod:`repro.eval.overhead` — the Table I overhead measurements
  (uninstrumented vs IncProf vs heartbeat builds, with measurement noise
  and per-app build biases);
- :mod:`repro.eval.experiments` — the per-app experiment driver (collect,
  analyze, instrument, re-run with heartbeats), with memoized results;
- :mod:`repro.eval.tables` — Table I and Tables II-VI generators;
- :mod:`repro.eval.convergence` — online-vs-batch agreement curves for
  the incremental streaming engine;
- :mod:`repro.eval.figures` — Figures 2-6 heartbeat series and plots.
"""

from repro.eval.experiments import (
    ExperimentResult,
    clear_cache,
    run_experiment,
    run_experiments,
)
from repro.eval.convergence import (
    ConvergencePoint,
    ConvergenceResult,
    label_agreement,
    measure_convergence,
)
from repro.eval.overhead import OverheadResult, measure_overheads
from repro.eval.tables import table1, app_sites_table, comparison_table
from repro.eval.figures import heartbeat_figure, FigureResult
from repro.eval.rank_consistency import RankConsistency, analyze_all_ranks
from repro.eval.report_md import render_markdown_report, write_markdown_report
from repro.eval.stability import StabilityResult, stability_sweep
from repro.eval.site_quality import SiteQuality, compare_site_sets, quality_table

__all__ = [
    "ExperimentResult",
    "run_experiment",
    "run_experiments",
    "clear_cache",
    "ConvergencePoint",
    "ConvergenceResult",
    "label_agreement",
    "measure_convergence",
    "OverheadResult",
    "measure_overheads",
    "table1",
    "app_sites_table",
    "comparison_table",
    "heartbeat_figure",
    "FigureResult",
    "RankConsistency",
    "analyze_all_ranks",
    "render_markdown_report",
    "write_markdown_report",
    "StabilityResult",
    "stability_sweep",
    "SiteQuality",
    "compare_site_sets",
    "quality_table",
]
