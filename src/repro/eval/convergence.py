"""Online-vs-batch convergence: how fast does the streaming engine agree?

The streaming engine classifies each interval the moment its snapshot
arrives, using a model trained on only the prefix seen so far (and refit
when drift fires).  The batch pipeline sees the whole run at once.  This
experiment quantifies the price of immediacy: at a series of checkpoints
it compares every live assignment made so far against the final batch
labels — after greedy label matching, since live stable ids and batch
cluster ids are arbitrary alphabets — producing an agreement-over-time
curve that should climb toward 1.0 as the live model converges on the
batch phase structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.apps import get_app
from repro.core.incremental import IncrementalAnalyzer
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.util.errors import ValidationError
from repro.util.tables import Table


@dataclass(frozen=True)
class ConvergencePoint:
    """Agreement measured after ``intervals`` snapshots have streamed in."""

    intervals: int
    live_k: int
    model_version: int
    agreement: float


@dataclass(frozen=True)
class ConvergenceResult:
    """One app's online-vs-batch agreement curve."""

    app_name: str
    n_intervals: int
    batch_k: int
    n_refits: int
    final_agreement: float
    points: Tuple[ConvergencePoint, ...]

    def to_table(self) -> Table:
        table = Table(
            headers=["intervals", "live k", "model", "agreement"],
            title=(f"{self.app_name}: online-vs-batch agreement "
                   f"(batch k={self.batch_k}, {self.n_refits} refit(s))"),
        )
        for point in self.points:
            table.add_row(str(point.intervals), str(point.live_k),
                          f"v{point.model_version}", f"{point.agreement:.1%}")
        return table


def label_agreement(live: Sequence[Optional[int]],
                    batch: Sequence[int]) -> float:
    """Fraction of intervals where live and batch assignments agree.

    Live stable ids and batch cluster ids are arbitrary integers, so raw
    equality is meaningless; each live id is mapped to the batch label it
    co-occurs with most (a purity-style many-to-one alignment).  The
    mapping is deliberately *not* one-to-one: a refit retires a stable id
    and mints a fresh one for behavior the batch pipeline files under a
    single phase, so several live generations legitimately shadow one
    batch label.  Warmup intervals (live ``None``) are excluded; novel
    intervals (live ``-1``) form their own live id and count as
    disagreement unless novelty genuinely shadows one batch phase.
    """
    pairs = [(lv, int(b)) for lv, b in zip(live, batch) if lv is not None]
    if not pairs:
        return 0.0
    by_live: Counter = Counter(pairs)
    best: Counter = Counter()
    for (lv, _b), count in by_live.items():
        best[lv] = max(best[lv], count)
    return sum(best.values()) / len(pairs)


def measure_convergence(
    app_name: str = "synthetic",
    *,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    interval: float = 1.0,
    checkpoints: int = 8,
    warmup: int = 12,
    config: AnalysisConfig = AnalysisConfig(),
) -> ConvergenceResult:
    """Stream one collected run and score live agreement at checkpoints.

    The same snapshot series is analyzed twice: once by the batch
    pipeline (the reference labels) and once through the streaming
    engine one snapshot at a time, scoring :func:`label_agreement` over
    the prefix at each of ``checkpoints`` evenly spaced marks.
    """
    if checkpoints < 1:
        raise ValidationError("need at least one convergence checkpoint")
    app = get_app(app_name)
    session = Session(app, SessionConfig(ranks=1, seed=seed, scale=scale,
                                         interval=interval))
    snapshots = session.run().samples(0)
    batch = analyze_snapshots(snapshots, config)
    batch_labels = [int(label) for label in batch.phase_model.labels]
    engine = IncrementalAnalyzer(config, warmup=warmup)
    n = len(snapshots)
    marks = sorted({max(1, round(n * i / checkpoints))
                    for i in range(1, checkpoints + 1)})
    points = []
    for i, snapshot in enumerate(snapshots, start=1):
        engine.observe(snapshot)
        if i in marks:
            points.append(ConvergencePoint(
                intervals=i,
                live_k=engine.current_k,
                model_version=engine.model_version,
                agreement=label_agreement(engine.phase_sequence(),
                                          batch_labels),
            ))
    return ConvergenceResult(
        app_name=app_name,
        n_intervals=n,
        batch_k=batch.n_phases,
        n_refits=len(engine.refits),
        final_agreement=points[-1].agreement,
        points=tuple(points),
    )
