"""Online-vs-batch convergence: how fast does the streaming engine agree?

The streaming engine classifies each interval the moment its snapshot
arrives, using a model trained on only the prefix seen so far (and refit
when drift fires).  The batch pipeline sees the whole run at once.  This
experiment quantifies the price of immediacy: at a series of checkpoints
it compares every live assignment made so far against the final batch
labels — after greedy label matching, since live stable ids and batch
cluster ids are arbitrary alphabets — producing an agreement-over-time
curve that should climb toward 1.0 as the live model converges on the
batch phase structure.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.apps import get_app
from repro.core.incremental import DriftConfig, IncrementalAnalyzer
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.store.interface import IntervalStore, ReplayResult
from repro.util.errors import ValidationError
from repro.util.tables import Table


@dataclass(frozen=True)
class ConvergencePoint:
    """Agreement measured after ``intervals`` snapshots have streamed in."""

    intervals: int
    live_k: int
    model_version: int
    agreement: float


@dataclass(frozen=True)
class ConvergenceResult:
    """One app's online-vs-batch agreement curve."""

    app_name: str
    n_intervals: int
    batch_k: int
    n_refits: int
    final_agreement: float
    points: Tuple[ConvergencePoint, ...]

    def to_table(self) -> Table:
        table = Table(
            headers=["intervals", "live k", "model", "agreement"],
            title=(f"{self.app_name}: online-vs-batch agreement "
                   f"(batch k={self.batch_k}, {self.n_refits} refit(s))"),
        )
        for point in self.points:
            table.add_row(str(point.intervals), str(point.live_k),
                          f"v{point.model_version}", f"{point.agreement:.1%}")
        return table


def label_agreement(live: Sequence[Optional[int]],
                    batch: Sequence[int]) -> float:
    """Fraction of intervals where live and batch assignments agree.

    Live stable ids and batch cluster ids are arbitrary integers, so raw
    equality is meaningless; each live id is mapped to the batch label it
    co-occurs with most (a purity-style many-to-one alignment).  The
    mapping is deliberately *not* one-to-one: a refit retires a stable id
    and mints a fresh one for behavior the batch pipeline files under a
    single phase, so several live generations legitimately shadow one
    batch label.  Warmup intervals (live ``None``) are excluded; novel
    intervals (live ``-1``) form their own live id and count as
    disagreement unless novelty genuinely shadows one batch phase.
    """
    pairs = [(lv, int(b)) for lv, b in zip(live, batch) if lv is not None]
    if not pairs:
        return 0.0
    by_live: Counter = Counter(pairs)
    best: Counter = Counter()
    for (lv, _b), count in by_live.items():
        best[lv] = max(best[lv], count)
    return sum(best.values()) / len(pairs)


@dataclass(frozen=True)
class ThresholdSweepPoint:
    """One refit-drift-threshold setting backtested against a recording."""

    threshold: float
    n_refits: int
    n_phases: int
    n_novel: int
    agreement: float
    replay: ReplayResult


def sweep_refit_thresholds(
    store: IntervalStore,
    stream_id: str,
    thresholds: Sequence[float],
    *,
    t0: Optional[float] = None,
    t1: Optional[float] = None,
    warmup: int = 12,
    refit_cooldown: int = 16,
    config: AnalysisConfig = AnalysisConfig(),
) -> Tuple[ThresholdSweepPoint, ...]:
    """Backtest the refit sensitivity knob against recorded traffic.

    The time-travel API turns ``--refit-drift-threshold`` tuning into an
    offline experiment: the same recorded window of ``stream_id`` is
    re-driven through the streaming engine once per candidate
    ``novel_rate``, and each run is scored with :func:`label_agreement`
    against the batch pipeline's labels over exactly that window.  A low
    threshold refits eagerly (more model churn, usually higher
    agreement); a high one coasts on a stale model.  The replayed
    engines ride along on each point for deeper inspection.
    """
    if not thresholds:
        raise ValidationError("need at least one threshold to sweep")
    for value in thresholds:
        if not 0 < value <= 1:
            raise ValidationError(
                f"drift threshold {value} must be in (0, 1]")
    snapshots = [snap for _i, snap in store.window(stream_id, t0, t1)]
    if not snapshots:
        raise ValidationError(
            f"no replayable intervals for stream {stream_id!r}"
            + (f" in window [{t0}, {t1})"
               if t0 is not None or t1 is not None else ""))
    batch = analyze_snapshots(snapshots, config)
    batch_labels = [int(label) for label in batch.phase_model.labels]
    points = []
    for threshold in thresholds:
        replay = store.replay(
            stream_id, t0, t1, config=config, warmup=warmup,
            drift=DriftConfig(novel_rate=threshold),
            refit_cooldown=refit_cooldown)
        timeline = replay.phase_timeline()
        points.append(ThresholdSweepPoint(
            threshold=threshold,
            n_refits=len(replay.refits),
            n_phases=len({p for p in timeline if p is not None and p >= 0}),
            n_novel=sum(1 for u in replay.updates if u.novel),
            agreement=label_agreement(replay.engine.phase_sequence(),
                                      batch_labels),
            replay=replay,
        ))
    return tuple(points)


def measure_convergence(
    app_name: str = "synthetic",
    *,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    interval: float = 1.0,
    checkpoints: int = 8,
    warmup: int = 12,
    config: AnalysisConfig = AnalysisConfig(),
) -> ConvergenceResult:
    """Stream one collected run and score live agreement at checkpoints.

    The same snapshot series is analyzed twice: once by the batch
    pipeline (the reference labels) and once through the streaming
    engine one snapshot at a time, scoring :func:`label_agreement` over
    the prefix at each of ``checkpoints`` evenly spaced marks.
    """
    if checkpoints < 1:
        raise ValidationError("need at least one convergence checkpoint")
    app = get_app(app_name)
    session = Session(app, SessionConfig(ranks=1, seed=seed, scale=scale,
                                         interval=interval))
    snapshots = session.run().samples(0)
    batch = analyze_snapshots(snapshots, config)
    batch_labels = [int(label) for label in batch.phase_model.labels]
    engine = IncrementalAnalyzer(config, warmup=warmup)
    n = len(snapshots)
    marks = sorted({max(1, round(n * i / checkpoints))
                    for i in range(1, checkpoints + 1)})
    points = []
    for i, snapshot in enumerate(snapshots, start=1):
        engine.observe(snapshot)
        if i in marks:
            points.append(ConvergencePoint(
                intervals=i,
                live_k=engine.current_k,
                model_version=engine.model_version,
                agreement=label_agreement(engine.phase_sequence(),
                                          batch_labels),
            ))
    return ConvergenceResult(
        app_name=app_name,
        n_intervals=n,
        batch_k=batch.n_phases,
        n_refits=len(engine.refits),
        final_agreement=points[-1].agreement,
        points=tuple(points),
    )
