"""Seed-stability sweeps.

The paper reports one measured run per application.  This driver
quantifies how stable the reproduction's detection is across repeated
runs (seeds): phase-count histogram, per-site discovery frequency, and
an overall stability score — the honest error bars around the fixed-seed
tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.apps import get_app
from repro.core.model import InstType
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.util.errors import ValidationError
from repro.util.tables import Table

SiteKey = Tuple[str, InstType]


@dataclass(frozen=True)
class StabilityResult:
    """Detection outcomes over a seed sweep for one application."""

    app_name: str
    seeds: Tuple[int, ...]
    phase_counts: Tuple[int, ...]
    site_frequency: Dict[SiteKey, int]

    @property
    def n_runs(self) -> int:
        return len(self.seeds)

    def phase_count_histogram(self) -> Dict[int, int]:
        hist: Dict[int, int] = {}
        for k in self.phase_counts:
            hist[k] = hist.get(k, 0) + 1
        return dict(sorted(hist.items()))

    def modal_phase_count(self) -> int:
        hist = self.phase_count_histogram()
        return max(hist, key=hist.get)

    def phase_count_stability(self) -> float:
        """Fraction of runs hitting the modal phase count."""
        return self.phase_count_histogram()[self.modal_phase_count()] / self.n_runs

    def core_sites(self, min_frequency: float = 0.8) -> List[SiteKey]:
        """Sites discovered in at least ``min_frequency`` of runs."""
        threshold = min_frequency * self.n_runs
        return sorted(
            (site for site, count in self.site_frequency.items()
             if count >= threshold),
            key=lambda s: (-self.site_frequency[s], s[0]),
        )

    def to_table(self) -> Table:
        table = Table(
            headers=["site", "type", "discovered in"],
            title=(f"{self.app_name}: site discovery over {self.n_runs} seeds "
                   f"(phase counts {self.phase_count_histogram()})"),
        )
        for (function, inst_type), count in sorted(
            self.site_frequency.items(), key=lambda kv: -kv[1]
        ):
            table.add_row(function, inst_type.value, f"{count}/{self.n_runs}")
        return table


def stability_sweep(
    app_name: str,
    seeds: Tuple[int, ...] = tuple(range(101, 111)),
    scale: float = 1.0,
    config: AnalysisConfig = AnalysisConfig(),
) -> StabilityResult:
    """Run the detection pipeline over a seed sweep."""
    if not seeds:
        raise ValidationError("need at least one seed")
    app = get_app(app_name)
    phase_counts: List[int] = []
    site_frequency: Dict[SiteKey, int] = {}
    for seed in seeds:
        session = Session(app, SessionConfig(ranks=1, scale=scale, seed=seed))
        analysis = analyze_snapshots(session.run().samples(0), config)
        phase_counts.append(analysis.n_phases)
        for site in {(s.function, s.inst_type) for s in analysis.sites()}:
            site_frequency[site] = site_frequency.get(site, 0) + 1
    return StabilityResult(
        app_name=app_name,
        seeds=tuple(seeds),
        phase_counts=tuple(phase_counts),
        site_frequency=site_frequency,
    )
