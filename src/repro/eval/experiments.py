"""Per-application experiment driver.

``run_experiment`` performs the paper's full methodology for one app:

1. collect incremental profiles with IncProf (virtual run);
2. run the phase-detection pipeline (clustering + Algorithm 1);
3. re-run the app with AppEKG instrumentation at the *discovered* sites;
4. re-run with the paper's *manual* sites;
5. measure the three builds' overheads (Table I).

Results are memoized per (app, scale, seed, ranks) since the benchmark
harness regenerates several tables/figures from the same experiment.
"""

from __future__ import annotations

from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps import get_app
from repro.core.pipeline import AnalysisConfig, AnalysisResult, analyze_snapshots
from repro.eval.overhead import OverheadResult, measure_overheads
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.heartbeat.analysis import HeartbeatSeries, series_from_records
from repro.heartbeat.instrument import SiteBinding, bindings_from_sites
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig


@dataclass
class ExperimentResult:
    """Everything the tables and figures need for one application."""

    app_name: str
    scale: float
    seed: int
    analysis: AnalysisResult
    overheads: OverheadResult
    discovered_bindings: List[SiteBinding]
    manual_bindings: List[SiteBinding]
    discovered_records: List[HeartbeatRecord]
    manual_records: List[HeartbeatRecord]
    collection_runtime: float
    interval: float

    @property
    def n_phases(self) -> int:
        return self.analysis.n_phases

    def discovered_series(self) -> HeartbeatSeries:
        labels = {b.hb_id: f"{b.function} ({b.inst_type.value})" for b in self.discovered_bindings}
        return series_from_records(
            self.discovered_records,
            interval=self.interval,
            labels=labels,
            rank=0,
        )

    def manual_series(self) -> HeartbeatSeries:
        labels = {b.hb_id: f"{b.function} ({b.inst_type.value})" for b in self.manual_bindings}
        return series_from_records(
            self.manual_records,
            interval=self.interval,
            labels=labels,
            rank=0,
        )


#: Memoized experiments, LRU-bounded: a long-lived process (the
#: ``incprofd`` daemon, a notebook sweeping app/scale/seed combinations)
#: must not grow this without limit — each entry holds full per-interval
#: matrices and heartbeat series.
_CACHE: "OrderedDict[Tuple, ExperimentResult]" = OrderedDict()
_CACHE_CAPACITY = 16


def clear_cache() -> None:
    """Drop memoized experiments (tests use this for isolation)."""
    _CACHE.clear()


def set_cache_capacity(capacity: int) -> None:
    """Re-bound the experiment LRU (evicts immediately if shrinking)."""
    global _CACHE_CAPACITY
    if capacity < 1:
        raise ValueError("cache capacity must be positive")
    _CACHE_CAPACITY = capacity
    while len(_CACHE) > _CACHE_CAPACITY:
        _CACHE.popitem(last=False)


def cache_info() -> Dict[str, int]:
    """Current size and bound of the experiment cache."""
    return {"size": len(_CACHE), "capacity": _CACHE_CAPACITY}


def run_experiment(
    app_name: str,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    ranks: int = 1,
    interval: float = 1.0,
    analysis_config: Optional[AnalysisConfig] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the full methodology for ``app_name`` (memoized).

    ``workers`` > 1 parallelizes the analysis k sweep; it changes only
    wall time, never results, so it is deliberately absent from the
    memoization key.
    """
    key = (app_name, scale, seed, ranks, interval, analysis_config is None)
    if use_cache and analysis_config is None and key in _CACHE:
        _CACHE.move_to_end(key)
        return _CACHE[key]

    app = get_app(app_name)

    # 1. Collection run (analysis timeline: costs off, as the paper's
    #    phase data is normalized per interval regardless of slowdown).
    collect = Session(
        app,
        SessionConfig(interval=interval, ranks=ranks, seed=seed, scale=scale,
                      collect_profiles=True, charge_costs=False),
    ).run()

    # 2. Phase detection + Algorithm 1 on the representative rank.
    config = analysis_config if analysis_config is not None else AnalysisConfig()
    analysis = analyze_snapshots(collect.samples(0), config, workers=workers)

    # 3/4. Heartbeat runs at discovered and manual sites (costs off; these
    #      runs produce the Figures 2-6 series).
    discovered_sites = [s.site for s in analysis.sites()]
    discovered_bindings = bindings_from_sites(discovered_sites)
    manual_bindings = bindings_from_sites(app.manual_sites)

    def hb_run(bindings: List[SiteBinding]) -> List[HeartbeatRecord]:
        if not bindings:
            return []
        session = Session(
            app,
            SessionConfig(interval=interval, ranks=1, seed=seed, scale=scale,
                          collect_profiles=False, charge_costs=False,
                          heartbeat_sites=bindings),
        )
        return session.run().heartbeat_records(0)

    discovered_records = hb_run(discovered_bindings)
    manual_records = hb_run(manual_bindings)

    # 5. Overhead measurements.
    overheads = measure_overheads(app, scale=scale, seed=seed, interval=interval)

    result = ExperimentResult(
        app_name=app_name,
        scale=scale,
        seed=seed,
        analysis=analysis,
        overheads=overheads,
        discovered_bindings=discovered_bindings,
        manual_bindings=manual_bindings,
        discovered_records=discovered_records,
        manual_records=manual_records,
        collection_runtime=collect.runtime,
        interval=interval,
    )
    if use_cache and analysis_config is None:
        _CACHE[key] = result
        _CACHE.move_to_end(key)
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    return result


def run_experiments(
    app_names: Sequence[str],
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    ranks: int = 1,
    interval: float = 1.0,
    analysis_config: Optional[AnalysisConfig] = None,
    use_cache: bool = True,
    workers: Optional[int] = None,
) -> Dict[str, ExperimentResult]:
    """Run the full methodology for several apps, optionally in parallel.

    With ``workers`` > 1, uncached apps run on a process pool (one task
    per app; each task keeps its own k sweep serial to avoid nested
    pools).  Every app's experiment is fully determined by its own
    ``(app, scale, seed, ranks, interval)`` tuple, so parallel results
    are identical to serial ones; the returned dict preserves the input
    order either way, and fresh results land in the in-process cache.
    """
    names = list(app_names)
    results: Dict[str, ExperimentResult] = {}
    kwargs = dict(scale=scale, seed=seed, ranks=ranks, interval=interval,
                  analysis_config=analysis_config, use_cache=use_cache)
    if workers is not None and workers > 1 and len(names) > 1:
        cached = [name for name in names
                  if use_cache and analysis_config is None
                  and (name, scale, seed, ranks, interval, True) in _CACHE]
        fresh = [name for name in names if name not in cached]
        for name in cached:
            results[name] = run_experiment(name, **kwargs)
        if fresh:
            with ProcessPoolExecutor(max_workers=min(workers, len(fresh))) as pool:
                futures = {name: pool.submit(run_experiment, name, **kwargs)
                           for name in fresh}
                for name in fresh:
                    results[name] = futures[name].result()
            if use_cache and analysis_config is None:
                for name in fresh:
                    key = (name, scale, seed, ranks, interval, True)
                    _CACHE[key] = results[name]
                    _CACHE.move_to_end(key)
                while len(_CACHE) > _CACHE_CAPACITY:
                    _CACHE.popitem(last=False)
        return {name: results[name] for name in names}
    for name in names:
        results[name] = run_experiment(name, workers=workers, **kwargs)
    return results
