"""Overhead measurement (paper Table I, columns 4-5).

The paper measures overhead the only way one can: run each build and
compare wall clocks.  Three builds per app:

- **plain**: no instrumentation (the baseline runtime);
- **IncProf**: ``-pg`` build under the snapshot collector — overhead
  emerges from mcount cost per call, SIGPROF handling, and per-dump cost,
  plus any systematic ``-pg``-build bias (MiniFE's negative anomaly);
- **heartbeat**: AppEKG build with the *manual* sites instrumented (as the
  paper's Table I states), overhead from per-event cost plus the app's
  heartbeat-build bias (LAMMPS's prototype artifact).

Each measured runtime includes seeded run-to-run noise, so small
overheads can legitimately come out negative — exactly as in real
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.base import AppModel
from repro.heartbeat.instrument import bindings_from_sites
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.util.rng import rng_stream


@dataclass(frozen=True)
class OverheadResult:
    """Measured runtimes and derived overhead percentages for one app."""

    app_name: str
    uninstrumented_s: float
    incprof_s: float
    heartbeat_s: float
    #: Model-side statistics (before noise), useful for analysis.
    incprof_overhead_model_s: float
    heartbeat_overhead_model_s: float
    total_calls: int

    @property
    def incprof_overhead_pct(self) -> float:
        return 100.0 * (self.incprof_s - self.uninstrumented_s) / self.uninstrumented_s

    @property
    def heartbeat_overhead_pct(self) -> float:
        return 100.0 * (self.heartbeat_s - self.uninstrumented_s) / self.uninstrumented_s


def measure_overheads(
    app: AppModel,
    scale: float = 1.0,
    seed: int = DEFAULT_SEED,
    interval: float = 1.0,
) -> OverheadResult:
    """Run the three builds of ``app`` and measure Table I's overheads.

    Runs are single-rank (the job runtime of a symmetric application is
    its representative rank's); multi-rank collection is exercised by
    :class:`~repro.incprof.session.Session` directly.
    """
    base_cfg = dict(interval=interval, ranks=1, seed=seed, scale=scale)

    plain = Session(
        app, SessionConfig(collect_profiles=False, charge_costs=False, **base_cfg)
    ).run()
    incprof = Session(
        app, SessionConfig(collect_profiles=True, charge_costs=True, **base_cfg)
    ).run()
    manual_bindings = bindings_from_sites(app.manual_sites)
    heartbeat = Session(
        app,
        SessionConfig(
            collect_profiles=False,
            charge_costs=True,
            heartbeat_sites=manual_bindings,
            **base_cfg,
        ),
    ).run()

    # Measurement: apply per-build systematic bias and run-to-run noise.
    noise = app.noise
    plain_s = noise.apply(plain.runtime, rng_stream(seed, app.name, "measure", "plain"),
                          instrumented=False)
    incprof_raw = incprof.runtime * (1.0 + app.incprof_build_bias)
    incprof_s = noise.apply(incprof_raw, rng_stream(seed, app.name, "measure", "incprof"),
                            instrumented=False)
    heartbeat_raw = heartbeat.runtime * (1.0 + app.heartbeat_build_bias)
    heartbeat_s = noise.apply(heartbeat_raw, rng_stream(seed, app.name, "measure", "hb"),
                              instrumented=False)

    return OverheadResult(
        app_name=app.name,
        uninstrumented_s=plain_s,
        incprof_s=incprof_s,
        heartbeat_s=heartbeat_s,
        incprof_overhead_model_s=incprof.rank0.total_overhead,
        heartbeat_overhead_model_s=heartbeat.rank0.total_overhead,
        total_calls=incprof.rank0.total_calls,
    )
