"""Table generators (paper Tables I-VI).

Each generator returns a :class:`~repro.util.tables.Table`; the benchmark
harness renders them so the regenerated rows can be compared directly to
the paper's published values (also available side by side through
:func:`comparison_table`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.apps import get_app
from repro.core.report import sites_table
from repro.eval import paperdata
from repro.eval.experiments import ExperimentResult
from repro.util.tables import Table


def table1(results: Dict[str, ExperimentResult]) -> Table:
    """Regenerate Table I (setup, overheads, phase counts)."""
    table = Table(
        headers=["App", "Procs/Nodes", "Uninstr Runtime (sec)", "IncProf Ovhd (%)",
                 "Heartbeat Ovhd (%)", "# Phases Discov."],
        title="TABLE I — EXPERIMENTAL OVERVIEW: SETUP & OVERHEAD",
    )
    for name, result in results.items():
        app = get_app(name)
        table.add_row(
            name,
            f"{app.default_ranks} / {app.default_nodes}",
            round(result.overheads.uninstrumented_s),
            result.overheads.incprof_overhead_pct,
            result.overheads.heartbeat_overhead_pct,
            result.n_phases,
        )
    return table


def table1_comparison(results: Dict[str, ExperimentResult]) -> Table:
    """Table I with the paper's published values interleaved."""
    table = Table(
        headers=["App", "Runtime (paper/ours)", "IncProf % (paper/ours)",
                 "Heartbeat % (paper/ours)", "# Phases (paper/ours)"],
        title="TABLE I — paper vs reproduced",
    )
    for name, result in results.items():
        paper = paperdata.TABLE1.get(name)
        if paper is None:
            continue
        o = result.overheads
        table.add_row(
            name,
            f"{paper.uninstrumented_runtime_s:.0f} / {o.uninstrumented_s:.0f}",
            f"{paper.incprof_overhead_pct:+.1f} / {o.incprof_overhead_pct:+.1f}",
            f"{paper.heartbeat_overhead_pct:+.1f} / {o.heartbeat_overhead_pct:+.1f}",
            f"{paper.n_phases} / {result.n_phases}",
        )
    return table


_TABLE_NUMBER = {"graph500": "II", "minife": "III", "miniamr": "IV",
                 "lammps": "V", "gadget2": "VI"}


def app_sites_table(result: ExperimentResult) -> Table:
    """Regenerate the per-app instrumented-functions table (II-VI)."""
    app = get_app(result.app_name)
    number = _TABLE_NUMBER.get(result.app_name, "?")
    return sites_table(
        result.analysis,
        title=f"TABLE {number} — {result.app_name.upper()} INSTRUMENTED FUNCTIONS",
        manual_sites=app.manual_sites,
    )


def paper_sites_table(app_name: str) -> Table:
    """The paper's published version of the per-app table."""
    number = _TABLE_NUMBER.get(app_name, "?")
    table = Table(
        headers=["Phase ID", "HB ID", "Discovered Site Function", "Phase %", "App %", "Inst. Type"],
        title=f"TABLE {number} (paper) — {app_name.upper()}",
    )
    for row in paperdata.SITES.get(app_name, ()):
        table.add_row(row.phase_id, row.hb_id, row.function, row.phase_pct,
                      row.app_pct, row.inst_type.value)
    return table


def comparison_table(result: ExperimentResult) -> Table:
    """Per-function App % share: paper vs reproduced, plus site agreement."""
    app_name = result.app_name
    ours: Dict[str, float] = {}
    our_types: Dict[str, set] = {}
    for selected in result.analysis.sites():
        ours[selected.function] = ours.get(selected.function, 0.0) + selected.app_pct
        our_types.setdefault(selected.function, set()).add(selected.inst_type)

    paper_rows = paperdata.SITES.get(app_name, ())
    paper_share: Dict[str, float] = {}
    paper_types: Dict[str, set] = {}
    for row in paper_rows:
        paper_share[row.function] = paper_share.get(row.function, 0.0) + (row.app_pct or 0.0)
        paper_types.setdefault(row.function, set()).add(row.inst_type)

    table = Table(
        headers=["Function", "App % (paper)", "App % (ours)", "Types (paper)", "Types (ours)"],
        title=f"{app_name}: discovered-site agreement",
    )
    for function in sorted(set(paper_share) | set(ours)):
        table.add_row(
            function,
            paper_share.get(function),
            ours.get(function),
            "/".join(sorted(t.value for t in paper_types.get(function, set()))) or "-",
            "/".join(sorted(t.value for t in our_types.get(function, set()))) or "-",
        )
    return table


def render_all(results: Dict[str, ExperimentResult]) -> str:
    """Render Table I plus every per-app table and comparison."""
    parts = [table1(results).render(), "", table1_comparison(results).render()]
    for name, result in results.items():
        parts.extend(["", app_sites_table(result).render(),
                      "", comparison_table(result).render()])
    return "\n".join(parts)
