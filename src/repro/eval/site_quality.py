"""Quantifying instrumentation-site quality.

The paper compares discovered sites to manual ones by inspecting
heartbeat plots ("the discovered sites better capture the behavior",
"our three manual sites are simultaneously active, not really capturing
different phase behavior").  This module turns that judgement into a
number: a site set is good exactly when the per-interval pattern of
*which heartbeats fired* identifies the phase.

For each interval we form its **signature** — the set of heartbeat IDs
active in it — and measure how well signatures predict the detected
phase labels:

- **purity**: each distinct signature votes for its majority phase;
  purity is the fraction of intervals whose phase matches their
  signature's majority.  1.0 = signatures identify phases perfectly;
  ~max phase share = signatures carry no information.
- **coverage**: fraction of intervals with any heartbeat at all (a site
  set that is silent half the time cannot monitor those intervals).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

import numpy as np

from repro.eval.experiments import ExperimentResult
from repro.heartbeat.analysis import HeartbeatSeries
from repro.util.errors import ValidationError
from repro.util.tables import Table


@dataclass(frozen=True)
class SiteQuality:
    """Discrimination scores of one site set on one run."""

    kind: str  # "discovered" | "manual"
    purity: float
    coverage: float
    n_signatures: int
    baseline_purity: float  # the majority-phase share (no-information floor)

    @property
    def lift(self) -> float:
        """Purity above the no-information floor, rescaled to [0, 1]."""
        denom = 1.0 - self.baseline_purity
        if denom <= 0:
            return 0.0
        return max(0.0, (self.purity - self.baseline_purity) / denom)


def _signatures(series: HeartbeatSeries, n_intervals: int) -> List[FrozenSet[int]]:
    out: List[FrozenSet[int]] = []
    for i in range(n_intervals):
        active = frozenset(
            hb_id for hb_id in series.hb_ids() if series.counts[hb_id][i] > 0
        )
        out.append(active)
    return out


def score_series(
    series: HeartbeatSeries,
    phase_labels: Sequence[int],
    kind: str = "sites",
) -> SiteQuality:
    """Score a heartbeat series against phase labels (see module doc)."""
    n = min(series.n_intervals, len(phase_labels))
    if n == 0:
        raise ValidationError("no intervals to score")
    labels = np.asarray(phase_labels[:n])
    signatures = _signatures(series, n)

    by_signature: Dict[FrozenSet[int], Dict[int, int]] = {}
    for signature, label in zip(signatures, labels):
        by_signature.setdefault(signature, {})[int(label)] = (
            by_signature.setdefault(signature, {}).get(int(label), 0) + 1
        )
    correct = sum(max(votes.values()) for votes in by_signature.values())

    counts = np.bincount(labels)
    baseline = float(counts.max()) / n

    covered = sum(1 for s in signatures if s)
    return SiteQuality(
        kind=kind,
        purity=correct / n,
        coverage=covered / n,
        n_signatures=len(by_signature),
        baseline_purity=baseline,
    )


def compare_site_sets(result: ExperimentResult) -> Tuple[SiteQuality, SiteQuality]:
    """Score discovered vs manual instrumentation for one experiment."""
    labels = result.analysis.phase_model.labels
    discovered = score_series(result.discovered_series(), labels, "discovered")
    manual = score_series(result.manual_series(), labels, "manual")
    return discovered, manual


def quality_table(results: Dict[str, ExperimentResult]) -> Table:
    """Side-by-side site-quality table across applications."""
    table = Table(
        headers=["App", "set", "purity", "lift", "coverage", "signatures"],
        title="Site quality: do heartbeat signatures identify the phases?",
        float_fmt=".2f",
    )
    for name, result in results.items():
        for quality in compare_site_sets(result):
            table.add_row(name, quality.kind, quality.purity, quality.lift,
                          quality.coverage, quality.n_signatures)
    return table
