"""Figure generators (paper Figures 2-6: per-app heartbeat plots).

Each figure shows the average heartbeat duration per interval for the
discovered instrumentation sites — and, where the paper plots them
(Graph500, MiniAMR, Gadget2), the manual sites as well.  The raw dense
series are returned alongside ASCII renderings so tests and benches can
assert on the *shape*: activity spans, gaps, and which sites dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.eval.experiments import ExperimentResult
from repro.heartbeat.analysis import HeartbeatSeries

#: Figure numbers per app, and whether the paper also plots manual sites.
FIGURES: Dict[str, Dict] = {
    "graph500": {"number": 2, "manual": True},
    "minife": {"number": 3, "manual": False},
    "miniamr": {"number": 4, "manual": True},
    "lammps": {"number": 5, "manual": False},
    "gadget2": {"number": 6, "manual": True},
}


@dataclass
class FigureResult:
    """One regenerated figure: series plus text renderings."""

    app_name: str
    number: int
    discovered: HeartbeatSeries
    manual: Optional[HeartbeatSeries]

    def render(self, width: int = 100, height: int = 14) -> str:
        parts: List[str] = [
            self.discovered.duration_plot(
                f"Fig. {self.number} — {self.app_name}: discovered-site heartbeats "
                "(avg duration per interval)",
                width=width, height=height,
            ).render()
        ]
        if self.manual is not None:
            parts.append("")
            parts.append(
                self.manual.duration_plot(
                    f"Fig. {self.number} — {self.app_name}: manual-site heartbeats",
                    width=width, height=height,
                ).render()
            )
        return "\n".join(parts)

    def summary_rows(self) -> List[Dict[str, object]]:
        rows = [dict(kind="discovered", **row) for row in self.discovered.summary()]
        if self.manual is not None:
            rows.extend(dict(kind="manual", **row) for row in self.manual.summary())
        return rows


def heartbeat_figure(result: ExperimentResult) -> FigureResult:
    """Regenerate the heartbeat figure for one experiment."""
    spec = FIGURES.get(result.app_name, {"number": 0, "manual": True})
    manual = result.manual_series() if spec["manual"] else None
    return FigureResult(
        app_name=result.app_name,
        number=spec["number"],
        discovered=result.discovered_series(),
        manual=manual,
    )
