"""Fleet-scale accuracy sweeps over the generated scenario population.

The paper's evaluation is five fixed tables; the scenario engine
(:mod:`repro.apps.generator`) turns it into a *distribution*: hundreds
of seeded workloads with exact ground-truth phase timelines, swept
through the full collection + analysis pipeline and scored against
truth.  Two clustering scores are used:

- **label agreement** — optimal one-to-one matching between true phase
  types and detected phases (Hungarian-style assignment on the
  contingency table), i.e. the fraction of intervals correctly labeled
  under the best bijection.  Stricter than the purity-style many-to-one
  agreement used by the convergence experiments: merging two true
  phases into one detected phase is penalized.
- **adjusted Rand index (ARI)** — pair-counting agreement corrected for
  chance, invariant to label permutation.

Both are defined for the degenerate edges (empty label arrays, single
phase, permuted labels) so scenario scoring never divides by zero.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.generator import (TIER_NAMES, ScenarioGenerator,
                                  generate_scenario)
from repro.apps.spec import ScenarioApp, ScenarioSpec
from repro.apps.synthetic import detection_accuracy
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.incprof.session import DEFAULT_SEED, Session, SessionConfig
from repro.util.errors import ValidationError
from repro.util.tables import Table

# ----------------------------------------------------------------------
# clustering scores
# ----------------------------------------------------------------------


def _contingency(truth: np.ndarray, pred: np.ndarray) -> np.ndarray:
    """Counts matrix: rows = true classes, cols = predicted clusters."""
    _, ti = np.unique(truth, return_inverse=True)
    _, pi = np.unique(pred, return_inverse=True)
    matrix = np.zeros((ti.max() + 1, pi.max() + 1), dtype=np.int64)
    np.add.at(matrix, (ti, pi), 1)
    return matrix


def _max_assignment(weights: np.ndarray) -> float:
    """Maximum-weight one-to-one assignment (exact, bitmask DP).

    Phase counts are tiny (≤ kmax), so an O(rows · 2^cols) sweep is
    instant and avoids a scipy dependency in ``src``.  Falls back to a
    greedy matching if a pathological input has more than 20 columns.
    """
    if weights.shape[0] > weights.shape[1]:
        weights = weights.T
    rows, cols = weights.shape
    if cols > 20:  # greedy fallback; never hit by the pipeline (kmax=8)
        total, used_r, used_c = 0.0, set(), set()
        for r, c in sorted(np.ndindex(rows, cols),
                           key=lambda rc: -weights[rc]):
            if r not in used_r and c not in used_c:
                total += float(weights[r, c])
                used_r.add(r)
                used_c.add(c)
        return total
    dp = np.full(1 << cols, -np.inf)
    dp[0] = 0.0
    for r in range(rows):
        ndp = dp.copy()  # row r may stay unassigned
        for mask in range(1 << cols):
            if not np.isfinite(dp[mask]):
                continue
            for c in range(cols):
                bit = 1 << c
                if not mask & bit:
                    value = dp[mask] + weights[r, c]
                    if value > ndp[mask | bit]:
                        ndp[mask | bit] = value
        dp = ndp
    return float(dp.max())


def label_agreement_matched(truth: Sequence[int],
                            pred: Sequence[int]) -> float:
    """Fraction of intervals correct under the best one-to-one label map.

    Permutation-invariant; 1.0 for empty inputs (nothing to disagree
    about) and for identical partitions of any size.
    """
    truth = np.asarray(truth)
    pred = np.asarray(pred)
    if truth.shape != pred.shape:
        raise ValidationError("label arrays must have equal length")
    if truth.size == 0:
        return 1.0
    return _max_assignment(_contingency(truth, pred)) / truth.size


def adjusted_rand_index(truth: Sequence[int], pred: Sequence[int]) -> float:
    """Adjusted Rand index between two labelings.

    Permutation-invariant, chance-corrected; defined as 1.0 on the
    degenerate edges (empty input, or both sides a single cluster /
    all singletons, where the correction's denominator vanishes).
    """
    truth = np.asarray(truth)
    pred = np.asarray(pred)
    if truth.shape != pred.shape:
        raise ValidationError("label arrays must have equal length")
    n = truth.size
    if n == 0:
        return 1.0
    matrix = _contingency(truth, pred)

    def comb2(x: np.ndarray) -> float:
        x = x.astype(np.float64)
        return float(np.sum(x * (x - 1.0) / 2.0))

    sum_cells = comb2(matrix.ravel())
    sum_rows = comb2(matrix.sum(axis=1))
    sum_cols = comb2(matrix.sum(axis=0))
    total = n * (n - 1.0) / 2.0
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = (sum_rows + sum_cols) / 2.0
    if maximum == expected:  # both single-cluster, or all singletons
        return 1.0
    return (sum_cells - expected) / (maximum - expected)


# ----------------------------------------------------------------------
# scoring one scenario
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioScore:
    """One generated scenario's end-to-end phase-recovery scorecard."""

    name: str
    tier: str
    seed: int
    true_k: int
    detected_k: int
    n_intervals: int
    agreement: float
    ari: float
    dominant_recall: float
    runtime_s: float

    def to_obj(self) -> Dict[str, object]:
        return asdict(self)


def run_scenario(spec: ScenarioSpec, interval: float = 1.0,
                 session_seed: int = DEFAULT_SEED,
                 config: Optional[AnalysisConfig] = None) -> ScenarioScore:
    """Run one spec through collection + analysis; score against truth."""
    app = ScenarioApp(spec)
    t0 = time.perf_counter()
    result = Session(app, SessionConfig(ranks=1, seed=session_seed,
                                        interval=interval)).run()
    analysis = analyze_snapshots(result.samples(0),
                                 config or AnalysisConfig())
    data = analysis.interval_data
    midpoints = data.timestamps - data.interval / 2.0
    truth = spec.truth_labels(midpoints)
    pred = np.asarray(analysis.phase_model.labels)
    accuracy = detection_accuracy(app, analysis)
    return ScenarioScore(
        name=spec.name,
        tier=spec.tier,
        seed=spec.seed if spec.seed is not None else -1,
        true_k=spec.n_true_phases,
        detected_k=analysis.n_phases,
        n_intervals=int(data.n_intervals),
        agreement=round(label_agreement_matched(truth, pred), 4),
        ari=round(adjusted_rand_index(truth, pred), 4),
        dominant_recall=round(accuracy["dominant_recall"], 4),
        runtime_s=round(time.perf_counter() - t0, 4),
    )


def _score_coordinate(job: Tuple[int, str, float, int]) -> Dict[str, object]:
    """Worker entry point (module-level so it pickles)."""
    seed, tier, interval, session_seed = job
    spec = generate_scenario(seed, tier)
    return run_scenario(spec, interval=interval,
                        session_seed=session_seed).to_obj()


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def _percentile(values: List[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q))


def summarize_scores(scores: Sequence[ScenarioScore]) -> Dict[str, object]:
    """Per-tier accuracy distribution, ready for ``BENCH_perf.json``."""
    tiers: Dict[str, object] = {}
    for tier in sorted({s.tier for s in scores}):
        rows = [s for s in scores if s.tier == tier]
        agreements = [s.agreement for s in rows]
        aris = [s.ari for s in rows]
        tiers[tier] = {
            "n": len(rows),
            "median_agreement": round(_percentile(agreements, 50), 4),
            "p10_agreement": round(_percentile(agreements, 10), 4),
            "mean_agreement": round(float(np.mean(agreements)), 4),
            "median_ari": round(_percentile(aris, 50), 4),
            "p10_ari": round(_percentile(aris, 10), 4),
            "mean_abs_k_error": round(float(np.mean(
                [abs(s.detected_k - s.true_k) for s in rows])), 4),
            "mean_dominant_recall": round(float(np.mean(
                [s.dominant_recall for s in rows])), 4),
        }
    return tiers


def sweep_scenarios(
    n: int = 100,
    seed: int = 0,
    tiers: Sequence[str] = TIER_NAMES,
    interval: float = 1.0,
    session_seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
) -> Dict[str, object]:
    """Generate and score ``n`` scenarios; return the distribution report.

    ``workers`` > 1 fans scoring out across processes (each worker
    regenerates its spec from coordinates — cheap and avoids pickling
    whole specs).  ``progress(done, total)`` is called after each score.
    """
    if n <= 0:
        raise ValidationError("need a positive scenario count")
    generator = ScenarioGenerator(seed, tiers)
    coordinates = generator.coordinates(n)

    t0 = time.perf_counter()
    specs = [generate_scenario(s, t) for s, t in coordinates]
    generation_seconds = time.perf_counter() - t0

    jobs = [(s, t, interval, session_seed) for s, t in coordinates]
    raw: List[Dict[str, object]] = []
    t1 = time.perf_counter()
    if workers and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for obj in pool.map(_score_coordinate, jobs, chunksize=4):
                raw.append(obj)
                if progress:
                    progress(len(raw), n)
    else:
        for spec in specs:
            raw.append(run_scenario(spec, interval=interval,
                                    session_seed=session_seed).to_obj())
            if progress:
                progress(len(raw), n)
    sweep_seconds = time.perf_counter() - t1

    scores = [ScenarioScore(**obj) for obj in raw]
    return {
        "n_scenarios": n,
        "root_seed": int(seed),
        "session_seed": int(session_seed),
        "interval": interval,
        "tiers": summarize_scores(scores),
        "generation_seconds": round(generation_seconds, 4),
        "generation_per_sec": round(n / generation_seconds, 2)
        if generation_seconds > 0 else float("inf"),
        "sweep_seconds": round(sweep_seconds, 4),
        "scenarios_per_sec": round(n / sweep_seconds, 2)
        if sweep_seconds > 0 else float("inf"),
        "scores": [s.to_obj() for s in scores],
    }


def sweep_table(report: Dict[str, object]) -> Table:
    """Render a sweep report's per-tier summary as a text table."""
    table = Table(
        headers=["tier", "n", "median agr", "p10 agr", "median ARI",
                 "|k err|", "dom recall"],
        title=(f"scenario sweep: {report['n_scenarios']} scenarios, "
               f"root seed {report['root_seed']}, "
               f"{report['scenarios_per_sec']}/s"),
    )
    for tier, row in report["tiers"].items():
        table.add_row(
            tier, str(row["n"]),
            f"{row['median_agreement']:.3f}",
            f"{row['p10_agreement']:.3f}",
            f"{row['median_ari']:.3f}",
            f"{row['mean_abs_k_error']:.2f}",
            f"{row['mean_dominant_recall']:.3f}",
        )
    return table
