"""Full markdown reproduction report.

Renders everything the benchmark harness produces — Table I, the five
per-app tables with paper values, site agreement, figures as summaries,
outlier reports, and the extension results — into one self-contained
markdown document (what `incprof report-all` writes).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.apps import get_app, paper_app_names
from repro.core.callgraph_lift import suggest_lifts
from repro.core.outliers import analyze_outliers
from repro.core.postprocess import merge_equivalent_phases
from repro.eval.experiments import ExperimentResult, run_experiments
from repro.eval.figures import heartbeat_figure
from repro.eval.site_quality import quality_table
from repro.eval.tables import (
    app_sites_table,
    comparison_table,
    paper_sites_table,
    table1,
    table1_comparison,
)
from repro.util.tables import Table


def _figure_summary_table(result: ExperimentResult) -> Table:
    figure = heartbeat_figure(result)
    table = Table(
        headers=["kind", "HB", "site", "beats", "rate /s", "avg dur (s)",
                 "active intervals", "gaps"],
        title=f"Figure {figure.number} summary — {result.app_name}",
        float_fmt=".3g",
    )
    for row in figure.summary_rows():
        table.add_row(row["kind"], row["hb_id"], row["label"],
                      row["total_count"], row["mean_rate_per_s"],
                      row["mean_duration_s"], row["active_intervals"],
                      row["n_gaps"])
    return table


def render_markdown_report(
    results: Optional[Dict[str, ExperimentResult]] = None,
    title: str = "IncProf reproduction report",
    workers: Optional[int] = None,
) -> str:
    """Render the full reproduction as a markdown document.

    ``workers`` > 1 runs uncached per-app experiments on a process pool
    (identical results, shorter wall time); ignored when ``results`` is
    given.
    """
    if results is None:
        results = run_experiments(paper_app_names(), workers=workers)

    parts: List[str] = [f"# {title}", ""]
    parts += ["## Table I — overview", "",
              table1(results).render_markdown(), "",
              table1_comparison(results).render_markdown(), ""]
    parts += ["## Site quality (discovered vs manual)", "",
              quality_table(results).render_markdown(), ""]

    for name, result in results.items():
        app = get_app(name)
        parts += [f"## {name}", ""]
        parts += [app_sites_table(result).render_markdown(), ""]
        parts += [paper_sites_table(name).render_markdown(), ""]
        parts += [comparison_table(result).render_markdown(), ""]
        parts += [_figure_summary_table(result).render_markdown(), ""]

        outliers = analyze_outliers(result.analysis)
        parts += [f"**Outliers**: {outliers.uncovered_pct:.1f}% of intervals "
                  f"uncovered ({outliers.by_kind()})", ""]

        lifts = suggest_lifts(result.analysis)
        if lifts:
            parts += ["**Call-graph lifts**: " +
                      "; ".join(str(s) for s in lifts), ""]

        merged = merge_equivalent_phases(result.analysis)
        if merged.merges_applied():
            groups = [list(g.phase_ids) for g in merged.merged if g.was_merged]
            parts += [f"**Phase merging**: {merged.n_original} -> "
                      f"{merged.n_phases} phases (groups {groups})", ""]

    return "\n".join(parts)


def write_markdown_report(
    path: Union[str, Path],
    results: Optional[Dict[str, ExperimentResult]] = None,
    workers: Optional[int] = None,
) -> Path:
    """Write the report to ``path`` and return it."""
    path = Path(path)
    path.write_text(render_markdown_report(results, workers=workers) + "\n")
    return path
