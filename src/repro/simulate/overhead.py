"""Instrumentation cost model.

The paper measures three overheads (Table I): the gprof+IncProf collection
overhead, and the AppEKG heartbeat overhead.  Both arise from concrete
per-event costs; this module makes those costs explicit so overhead
percentages *emerge* from each workload's call density and event rates.

Defaults are calibrated to the mechanisms the paper describes:

- ``per_call``: one mcount prologue (call-arc bookkeeping in the glibc
  gprof runtime) — tens of nanoseconds on a modern core.
- ``sampling_fraction``: SIGPROF handling at the 100 Hz histogram rate,
  a fraction of total runtime.
- ``per_dump``: the IncProf wake-up writing and renaming one gmon file.
- ``per_heartbeat_event``: one AppEKG begin or end call (hash lookup plus
  an accumulator update under a lock in the prototype the paper measured).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CostModel:
    """Per-event virtual-time costs of the instrumentation machinery."""

    enabled: bool = True
    per_call: float = 45e-9
    sampling_fraction: float = 0.0006
    per_dump: float = 4e-3
    per_heartbeat_event: float = 1.8e-6

    @classmethod
    def disabled(cls) -> "CostModel":
        """A cost model that contributes no overhead (uninstrumented run)."""
        return cls(enabled=False, per_call=0.0, sampling_fraction=0.0,
                   per_dump=0.0, per_heartbeat_event=0.0)

    @classmethod
    def gprof_defaults(cls) -> "CostModel":
        """Costs for a ``-pg`` build being sampled by IncProf."""
        return cls()

    @classmethod
    def heartbeat_only(cls) -> "CostModel":
        """Costs for a production heartbeat build (no gprof, no dumps)."""
        return cls(per_call=0.0, sampling_fraction=0.0, per_dump=0.0)

    def with_overrides(self, **kwargs: float) -> "CostModel":
        """Return a copy with selected costs overridden."""
        return replace(self, **kwargs)
