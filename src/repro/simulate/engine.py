"""Virtual-time execution engine for workload models.

A *workload model* is a call tree of :class:`SimFunction` bodies that
describe what a real application does at function granularity: attributed
self-time (``ctx.work``), calls to other functions (``ctx.call``), batched
high-frequency calls (``ctx.call_batch``), loop-iteration marks
(``ctx.loop_tick``), and unattributed waits such as communication
(``ctx.idle``).

The engine advances a :class:`~repro.simulate.clock.VirtualClock` while
notifying observers of exactly the events a gprof-instrumented binary
exposes: call arcs, entry/exit, and the passage of self-time.  Scheduled
triggers (the IncProf snapshot wake-up) fire at precise virtual times in
the middle of work segments, so dumps see a consistent cumulative profile.

Instrumentation overhead is modeled as *unattributed* time — like the real
mcount/gmon machinery it lives outside the program's sampled address range
but inflates wall-clock time — so measured overhead percentages emerge
from call density and event rates rather than being hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.simulate.clock import TIME_EPS, VirtualClock
from repro.simulate.overhead import CostModel
from repro.util.errors import ValidationError

#: Pseudo-caller used for the root of the call tree, mirroring gprof's
#: ``<spontaneous>`` parent.
SPONTANEOUS = "<spontaneous>"


@dataclass(frozen=True)
class SimFunction:
    """A named function in a workload model.

    ``body(ctx, *args, **kwargs)`` describes the function's behaviour using
    the :class:`ExecutionContext` API.  Leaf functions whose entire cost is
    self-time may omit the body.
    """

    name: str
    body: Optional[Callable[..., Any]] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("SimFunction requires a non-empty name")


class EngineObserver:
    """Event interface for profilers and instrumentation.

    ``on_work`` is called while the engine is mid-segment and must not
    advance the clock; the entry/exit/tick hooks may add overhead via
    :meth:`Engine.overhead`.
    """

    def on_enter(self, func: str, t: float) -> None:
        """Function ``func`` begins executing at time ``t``."""

    def on_exit(self, func: str, t: float) -> None:
        """Function ``func`` returns at time ``t``."""

    def on_call(self, caller: str, callee: str, t: float, count: int = 1) -> None:
        """``caller`` invokes ``callee`` ``count`` times starting at ``t``."""

    def on_work(self, func: str, t0: float, t1: float) -> None:
        """``func`` executed its own code for the segment ``[t0, t1)``."""

    def on_batch_calls(self, caller: str, callee: str, n: int, t0: float, t1: float) -> None:
        """``n`` rapid calls of ``callee`` spanned ``[t0, t1)`` in aggregate."""

    def on_loop_tick(self, func: str, t: float) -> None:
        """A loop iteration boundary inside ``func`` at time ``t``."""


class ExecutionContext:
    """The API surface workload bodies program against."""

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._engine.clock.now

    @property
    def rank(self) -> int:
        """MPI rank of the simulated process."""
        return self._engine.rank

    @property
    def rng(self) -> np.random.Generator:
        """Per-rank noise stream for duration jitter."""
        return self._engine.rng

    @property
    def params(self) -> Dict[str, Any]:
        """Free-form workload parameters supplied by the app spec."""
        return self._engine.params

    def work(self, seconds: float) -> None:
        """Execute ``seconds`` of self-time in the current function."""
        self._engine._work(seconds)

    def call(self, func: SimFunction, *args: Any, **kwargs: Any) -> Any:
        """Call ``func`` as a child of the current function."""
        return self._engine._call(func, args, kwargs)

    def call_batch(self, func: SimFunction, n: int, total_self_seconds: float) -> None:
        """Model ``n`` rapid calls of leaf ``func`` totalling the given self-time.

        This is how high-frequency tiny functions (e.g. Graph500's
        ``make_one_edge``) are expressed without ``n`` Python-level calls:
        the call-graph arc gains ``n`` counts and ``func`` is charged the
        aggregate self-time across the span.
        """
        self._engine._call_batch(func, n, total_self_seconds)

    def loop_tick(self) -> None:
        """Mark a loop-iteration boundary inside the current function."""
        self._engine._loop_tick()

    def idle(self, seconds: float) -> None:
        """Advance time without attributing it (blocked communication, I/O)."""
        self._engine._advance(seconds, None)


class Engine:
    """Runs one simulated process (one MPI rank) of a workload model."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        cost_model: Optional[CostModel] = None,
        rank: int = 0,
        rng: Optional[np.random.Generator] = None,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.cost_model = cost_model if cost_model is not None else CostModel.disabled()
        self.rank = rank
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.params = dict(params or {})
        self.observers: List[EngineObserver] = []
        self._stack: List[str] = [SPONTANEOUS]
        self._ctx = ExecutionContext(self)
        # Run statistics, useful for overhead accounting and tests.
        self.total_calls = 0
        self.total_attributed = 0.0
        self.total_overhead = 0.0
        self._in_overhead = False

    # ------------------------------------------------------------------
    # observer management
    # ------------------------------------------------------------------
    def add_observer(self, observer: EngineObserver) -> None:
        self.observers.append(observer)

    def remove_observer(self, observer: EngineObserver) -> None:
        self.observers.remove(observer)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    @property
    def current_function(self) -> str:
        """Name of the function on top of the call stack."""
        return self._stack[-1]

    def run(self, root: SimFunction, *args: Any, **kwargs: Any) -> Any:
        """Execute ``root`` to completion; returns the body's return value."""
        return self._call(root, args, kwargs)

    def overhead(self, seconds: float) -> None:
        """Add unattributed instrumentation overhead to the timeline.

        Safe to call from entry/exit/tick observers and trigger callbacks;
        no-op when the active :class:`CostModel` is disabled or ``seconds``
        is non-positive.
        """
        if seconds <= 0.0 or not self.cost_model.enabled:
            return
        # Guard against observers reacting to overhead-induced events by
        # adding further overhead recursively.
        if self._in_overhead:
            return
        self._in_overhead = True
        try:
            self.total_overhead += seconds
            self._advance(seconds, None)
        finally:
            self._in_overhead = False

    # ------------------------------------------------------------------
    # internals used by ExecutionContext
    # ------------------------------------------------------------------
    def _call(self, func: SimFunction, args: Sequence[Any], kwargs: Dict[str, Any]) -> Any:
        caller = self._stack[-1]
        self.total_calls += 1
        self.overhead(self.cost_model.per_call)
        t = self.clock.now
        for obs in self.observers:
            obs.on_call(caller, func.name, t, 1)
        self._stack.append(func.name)
        t_enter = self.clock.now
        for obs in self.observers:
            obs.on_enter(func.name, t_enter)
        try:
            result = func.body(self._ctx, *args, **kwargs) if func.body else None
        finally:
            t_exit = self.clock.now
            for obs in self.observers:
                obs.on_exit(func.name, t_exit)
            self._stack.pop()
        return result

    #: Batch arc/work interleaving granularity: calls are credited in
    #: slices of at most this much self-time, so a profile snapshot taken
    #: mid-batch sees call counts proportional to elapsed time — exactly
    #: what a real mcount-instrumented run of n tiny calls produces.
    BATCH_SLICE_SECONDS = 0.05

    def _call_batch(self, func: SimFunction, n: int, total_self_seconds: float) -> None:
        if n <= 0:
            raise ValidationError("call_batch requires n >= 1")
        if total_self_seconds < 0:
            raise ValidationError("call_batch requires non-negative self time")
        caller = self._stack[-1]
        self.total_calls += n
        self.overhead(self.cost_model.per_call * n)
        t0 = self.clock.now
        slices = max(1, int(total_self_seconds / self.BATCH_SLICE_SECONDS))
        self._stack.append(func.name)
        try:
            credited = 0
            for i in range(slices):
                count = (n * (i + 1)) // slices - credited
                credited += count
                if count:
                    t = self.clock.now
                    for obs in self.observers:
                        obs.on_call(caller, func.name, t, count)
                self._work(total_self_seconds / slices)
        finally:
            t1 = self.clock.now
            self._stack.pop()
        for obs in self.observers:
            obs.on_batch_calls(caller, func.name, n, t0, t1)

    def _loop_tick(self) -> None:
        func = self._stack[-1]
        t = self.clock.now
        for obs in self.observers:
            obs.on_loop_tick(func, t)

    def _work(self, seconds: float) -> None:
        if seconds < 0:
            raise ValidationError("work duration must be non-negative")
        func = self._stack[-1]
        if func == SPONTANEOUS:
            raise ValidationError("work() outside of any function")
        self.total_attributed += seconds
        self._advance(seconds, func)
        # Sampling-signal handling cost scales with attributed time.
        frac = self.cost_model.sampling_fraction
        if frac > 0.0 and self.cost_model.enabled:
            self.overhead(seconds * frac)

    def _advance(self, duration: float, func: Optional[str]) -> None:
        """Advance virtual time, splitting at trigger boundaries.

        Trigger callbacks may re-enter the engine through :meth:`overhead`
        (e.g. a snapshot dump); ``remaining`` is duration-based so the
        current work simply resumes after such a pause.
        """
        remaining = float(duration)
        while remaining > TIME_EPS:
            t0 = self.clock.now
            boundary = self.clock.next_trigger_time()
            seg_end = min(t0 + remaining, boundary)
            seg = seg_end - t0
            if seg > TIME_EPS:
                if func is not None:
                    for obs in self.observers:
                        obs.on_work(func, t0, seg_end)
                self.clock.set_time(seg_end)
                remaining -= seg
            if self.clock.next_trigger_time() <= self.clock.now + TIME_EPS:
                self.clock.fire_due()
