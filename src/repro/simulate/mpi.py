"""Simulated symmetric MPI execution.

The paper's applications are symmetrically parallel: every rank runs the
same program, so IncProf produces one profile stream per rank and the
analysis uses a representative rank (rank 0), keeping the rest for
aggregate descriptive statistics.  ``SimComm`` runs one engine per rank
(sequentially, each with its own virtual clock and rank-derived noise
stream) and provides those aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.gprof.gmon import GmonData
from repro.heartbeat.accumulator import HeartbeatRecord
from repro.util.errors import ValidationError


@dataclass
class RankResult:
    """Everything one simulated rank produced."""

    rank: int
    runtime: float
    samples: List[GmonData] = field(default_factory=list)
    heartbeat_records: List[HeartbeatRecord] = field(default_factory=list)
    total_calls: int = 0
    total_attributed: float = 0.0
    total_overhead: float = 0.0


class SimComm:
    """Run a per-rank job across ``n_ranks`` symmetric processes."""

    def __init__(self, n_ranks: int) -> None:
        if n_ranks < 1:
            raise ValidationError("need at least one rank")
        self.n_ranks = n_ranks

    def run(self, rank_job: Callable[[int], RankResult]) -> List[RankResult]:
        """Execute ``rank_job`` for every rank and return ordered results."""
        return [rank_job(rank) for rank in range(self.n_ranks)]

    # ------------------------------------------------------------------
    # aggregate descriptive statistics (the paper's multi-rank use)
    # ------------------------------------------------------------------
    @staticmethod
    def runtime_stats(results: List[RankResult]) -> Dict[str, float]:
        runtimes = np.array([r.runtime for r in results])
        return {
            "mean": float(runtimes.mean()),
            "std": float(runtimes.std()),
            "min": float(runtimes.min()),
            "max": float(runtimes.max()),
            "imbalance": float((runtimes.max() - runtimes.min()) / runtimes.mean())
            if runtimes.mean() > 0
            else 0.0,
        }

    @staticmethod
    def overhead_stats(results: List[RankResult]) -> Dict[str, float]:
        overheads = np.array([r.total_overhead for r in results])
        runtimes = np.array([r.runtime for r in results])
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(runtimes > 0, overheads / runtimes, 0.0)
        return {
            "mean_seconds": float(overheads.mean()),
            "mean_fraction": float(fractions.mean()),
        }

    @staticmethod
    def is_symmetric(results: List[RankResult], tolerance: float = 0.1) -> bool:
        """True if all ranks' runtimes agree within ``tolerance`` (relative)."""
        stats = SimComm.runtime_stats(results)
        return stats["imbalance"] <= tolerance
