"""Run-to-run variability models.

Real measurements include node noise, cache/TLB placement effects, and —
as the paper notes for MiniFE at ``-O3`` — systematic interactions between
the ``-pg`` instrumentation and the optimizer that can even make the
instrumented build *faster*.  The noise model separates the two:

- ``jitter(rng)`` draws a multiplicative run factor ~ N(1, sigma);
- ``systematic_bias`` is a deterministic per-app factor applied to an
  instrumented build (negative values model the MiniFE effect).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ValidationError


@dataclass(frozen=True)
class NoiseModel:
    """Multiplicative runtime noise: ``runtime * bias_factor * jitter``."""

    sigma: float = 0.01
    systematic_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValidationError("sigma must be non-negative")
        if self.systematic_bias <= -1.0:
            raise ValidationError("systematic bias cannot reach -100%")

    def jitter(self, rng: np.random.Generator) -> float:
        """Draw one run's multiplicative noise factor (>= 0.5 clamped)."""
        if self.sigma == 0.0:
            return 1.0
        return max(0.5, float(rng.normal(1.0, self.sigma)))

    def apply(self, runtime: float, rng: np.random.Generator, instrumented: bool) -> float:
        """Return the observed wall-clock runtime for one measured run."""
        factor = self.jitter(rng)
        if instrumented:
            factor *= 1.0 + self.systematic_bias
        return runtime * factor

    @classmethod
    def quiet(cls) -> "NoiseModel":
        """A noiseless model for deterministic tests."""
        return cls(sigma=0.0, systematic_bias=0.0)
