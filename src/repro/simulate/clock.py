"""Virtual clock with scheduled triggers.

The clock only moves when the engine advances it (attributed work,
overhead, or idle time).  Callbacks — e.g. the IncProf snapshot wake-up —
are scheduled at absolute times and fire *in order* while time advances,
so a profile dump observes exactly the work completed before its
trigger time.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Callable, List, Optional, Tuple

from repro.util.errors import ValidationError

Callback = Callable[[float], None]

#: Tolerance used when comparing virtual times; one nanosecond is far below
#: any modeled cost, so boundary events fire deterministically.
TIME_EPS = 1e-9


class VirtualClock:
    """A monotone virtual clock with absolute and periodic triggers."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[Tuple[float, int, object]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, when: float, callback: Callback) -> None:
        """Schedule ``callback(when)`` to fire when time reaches ``when``."""
        if when < self._now - TIME_EPS:
            raise ValidationError(f"cannot schedule at {when} before now={self._now}")
        heapq.heappush(self._heap, (float(when), next(self._counter), ("once", callback)))

    def schedule_every(self, period: float, callback: Callback, start: Optional[float] = None) -> None:
        """Schedule ``callback`` every ``period`` seconds, first at ``start``.

        ``start`` defaults to ``now + period`` — matching the IncProf
        sampler thread, which sleeps a full interval before its first dump.
        """
        if period <= 0:
            raise ValidationError("period must be positive")
        first = self._now + period if start is None else float(start)
        heapq.heappush(self._heap, (first, next(self._counter), ("every", callback, period)))

    def next_trigger_time(self) -> float:
        """Time of the earliest pending trigger, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else math.inf

    # ------------------------------------------------------------------
    # advancing
    # ------------------------------------------------------------------
    def set_time(self, when: float) -> None:
        """Move the clock to ``when`` without firing triggers.

        The engine uses this after it has already accounted the segment up
        to the next trigger boundary; use :meth:`fire_due` afterwards.
        """
        if when < self._now - TIME_EPS:
            raise ValidationError("virtual time cannot move backwards")
        self._now = max(self._now, float(when))

    def fire_due(self) -> int:
        """Fire every trigger scheduled at or before ``now``; return count."""
        fired = 0
        while self._heap and self._heap[0][0] <= self._now + TIME_EPS:
            when, _seq, entry = heapq.heappop(self._heap)
            if entry[0] == "once":
                entry[1](when)
            else:
                _tag, callback, period = entry
                callback(when)
                heapq.heappush(
                    self._heap, (when + period, next(self._counter), ("every", callback, period))
                )
            fired += 1
        return fired

    def cancel_all(self) -> None:
        """Drop all pending triggers (used at end of run)."""
        self._heap.clear()
