"""Discrete-event execution substrate.

The paper profiles compiled MPI applications on a cluster; this package
provides the equivalent substrate for reproduction: a virtual clock, an
execution engine that runs *workload models* (call trees with modeled
self-time), an overhead/cost model for the instrumentation being studied,
and a simulated set of symmetric MPI ranks.

The engine emits the same observable events a gprof-instrumented binary
produces — function entry/exit, call arcs, and the passage of attributed
self-time — which the profiler layer turns into gmon histograms.
"""

from repro.simulate.clock import VirtualClock
from repro.simulate.engine import Engine, EngineObserver, ExecutionContext, SimFunction
from repro.simulate.overhead import CostModel
from repro.simulate.noise import NoiseModel
from repro.simulate.mpi import SimComm, RankResult
from repro.simulate.tracelog import TraceLogger, TraceEvent

__all__ = [
    "VirtualClock",
    "Engine",
    "EngineObserver",
    "ExecutionContext",
    "SimFunction",
    "CostModel",
    "NoiseModel",
    "SimComm",
    "RankResult",
    "TraceLogger",
    "TraceEvent",
]
