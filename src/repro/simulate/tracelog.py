"""Execution trace export (Chrome trace-event format).

A development aid the original authors lean on visual tools for: capture
a simulated run's call tree as a trace and export it in the Chrome
``chrome://tracing`` / Perfetto JSON format, so a workload model's
structure can be inspected visually next to its heartbeat plots.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.simulate.engine import EngineObserver


@dataclass(frozen=True)
class TraceEvent:
    """One begin/end/instant event in the run's timeline."""

    kind: str  # "B", "E", or "i"
    name: str
    timestamp: float  # seconds


class TraceLogger(EngineObserver):
    """Engine observer recording entry/exit (and loop ticks) as a trace."""

    def __init__(self, include_ticks: bool = False, max_events: int = 2_000_000) -> None:
        self.include_ticks = include_ticks
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0

    def _push(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # ------------------------------------------------------------------
    def on_enter(self, func: str, t: float) -> None:
        self._push(TraceEvent("B", func, t))

    def on_exit(self, func: str, t: float) -> None:
        self._push(TraceEvent("E", func, t))

    def on_loop_tick(self, func: str, t: float) -> None:
        if self.include_ticks:
            self._push(TraceEvent("i", f"{func}:tick", t))

    def on_batch_calls(self, caller: str, callee: str, n: int, t0: float, t1: float) -> None:
        # A batch renders as one span annotated with its call count.
        self._push(TraceEvent("B", f"{callee} (x{n})", t0))
        self._push(TraceEvent("E", f"{callee} (x{n})", t1))

    # ------------------------------------------------------------------
    def to_chrome_trace(self, pid: int = 1, tid: int = 1) -> List[dict]:
        """Trace-event dicts (timestamps in microseconds, as the format wants)."""
        out = []
        for event in self.events:
            entry = {
                "name": event.name,
                "ph": event.kind,
                "ts": event.timestamp * 1e6,
                "pid": pid,
                "tid": tid,
            }
            if event.kind == "i":
                entry["s"] = "t"
            out.append(entry)
        return out

    def write_chrome_trace(self, path: Union[str, Path], **kwargs) -> Path:
        """Write a JSON file loadable by chrome://tracing or Perfetto."""
        path = Path(path)
        path.write_text(json.dumps({"traceEvents": self.to_chrome_trace(**kwargs)}))
        return path

    def validate_nesting(self) -> bool:
        """True if B/E events form a properly nested call tree."""
        stack: List[str] = []
        for event in self.events:
            if event.kind == "B":
                stack.append(event.name)
            elif event.kind == "E":
                if not stack or stack[-1] != event.name:
                    return False
                stack.pop()
        return not stack
