"""Snapshot collectors (the IncProf wake/dump/rename loop).

Both collectors produce the same artifact — an ordered list of cumulative
:class:`~repro.gprof.gmon.GmonData` snapshots, one per elapsed interval —
and can optionally persist each snapshot through any
:class:`~repro.store.interface.IntervalStore` backend (loose sample
files or the tiered segment store).
"""

from __future__ import annotations

import threading
from typing import List, Optional

from repro.gprof.gmon import GmonData
from repro.store.interface import IntervalStore
from repro.profiler.sampling import SamplingProfiler
from repro.profiler.tracing import TracingProfiler
from repro.simulate.clock import TIME_EPS
from repro.simulate.engine import Engine
from repro.util.errors import CollectorError, ValidationError


class VirtualSnapshotCollector:
    """Interval snapshots of a simulated run.

    Registers a periodic trigger on the engine's clock; each wake-up copies
    the profiler's cumulative state (stamped with the trigger time) and
    charges the configured dump cost to the run's timeline — exactly the
    overhead structure of the real tool's write+rename step.
    """

    def __init__(
        self,
        engine: Engine,
        profiler: SamplingProfiler,
        interval: float = 1.0,
        store: Optional[IntervalStore] = None,
    ) -> None:
        if interval <= 0:
            raise ValidationError("collection interval must be positive")
        self.engine = engine
        self.profiler = profiler
        self.interval = interval
        self.store = store
        self.samples: List[GmonData] = []
        self._finalized = False
        engine.clock.schedule_every(interval, self._wake)

    def _wake(self, t: float) -> None:
        if self._finalized:
            return
        snap = self.profiler.snapshot(t)
        self._record(snap)
        self.engine.overhead(self.engine.cost_model.per_dump)

    def _record(self, snap: GmonData) -> None:
        if self.store is not None:
            self.store.append(str(snap.rank), len(self.samples), snap)
        self.samples.append(snap)

    def finalize(self) -> List[GmonData]:
        """Stop collecting and take the program-exit dump if it adds data.

        The real runtime writes a final gmon.out at ``exit()``; we append a
        final snapshot unless the run ended exactly on an interval boundary.
        """
        if self._finalized:
            return self.samples
        self._finalized = True
        now = self.engine.clock.now
        if not self.samples or now > self.samples[-1].timestamp + TIME_EPS:
            self._record(self.profiler.snapshot(now))
        self.engine.clock.cancel_all()
        return self.samples


class LiveCollector:
    """Background-thread collector for real Python executions.

    Mirrors the preloaded IncProf library: a daemon thread sleeps for one
    interval, snapshots the tracing profiler, and repeats until stopped.
    """

    def __init__(
        self,
        profiler: TracingProfiler,
        interval: float = 1.0,
        store: Optional[IntervalStore] = None,
    ) -> None:
        if interval <= 0:
            raise ValidationError("collection interval must be positive")
        self.profiler = profiler
        self.interval = interval
        self.store = store
        self.samples: List[GmonData] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def _record(self, snap: GmonData) -> None:
        with self._lock:
            if self.store is not None:
                self.store.append(str(snap.rank), len(self.samples), snap)
            self.samples.append(snap)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self._record(self.profiler.snapshot())

    def start(self) -> None:
        if self._thread is not None:
            raise CollectorError("collector already started")
        self._stop.clear()
        self._thread = threading.Thread(target=self._loop, name="incprof-collector", daemon=True)
        self._thread.start()

    def stop(self) -> List[GmonData]:
        """Stop the wake-up thread and take the final program-exit dump."""
        if self._thread is None:
            raise CollectorError("collector was never started")
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._record(self.profiler.snapshot())
        return self.samples

    def __enter__(self) -> "LiveCollector":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._thread is not None:
            self.stop()
