"""Profiling arbitrary Python scripts (the preload-library analogue).

The original IncProf is an ``LD_PRELOAD`` shared library: no source
changes, attach to any ``-pg`` binary, dump every second.  This module
is the Python equivalent: run *any* script under the live tracing
profiler with a background snapshot thread, persist the per-interval
gmon files, and (optionally) analyze them on the spot.

Used by ``incprof live-script my_program.py`` and programmatically via
:func:`profile_script` / :func:`profile_callable`.
"""

from __future__ import annotations

import runpy
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

from repro.gprof.gmon import GmonData
from repro.incprof.collector import LiveCollector
from repro.store.loose import LooseStore
from repro.profiler.tracing import NameFilter, TracingProfiler
from repro.util.errors import CollectorError


@dataclass
class ScriptProfile:
    """Outcome of a profiled script/callable run."""

    samples: List[GmonData]
    elapsed: float
    result: object = None

    @property
    def final(self) -> GmonData:
        return self.samples[-1]


def profile_callable(
    target: Callable[[], object],
    interval: float = 1.0,
    sample_period: float = 0.005,
    name_filter: Optional[NameFilter] = None,
    file_filter: Optional[NameFilter] = None,
    store_dir: Optional[Union[str, Path]] = None,
) -> ScriptProfile:
    """Run ``target()`` under the live profiler + snapshot thread."""
    store = LooseStore(store_dir) if store_dir is not None else None
    profiler = TracingProfiler(sample_period=sample_period,
                               name_filter=name_filter,
                               file_filter=file_filter)
    collector = LiveCollector(profiler, interval=interval, store=store)
    collector.start()
    try:
        with profiler:
            result = target()
    finally:
        samples = collector.stop()
    return ScriptProfile(samples=samples, elapsed=profiler.elapsed, result=result)


def profile_script(
    script_path: Union[str, Path],
    argv: Sequence[str] = (),
    interval: float = 1.0,
    sample_period: float = 0.005,
    exclude_stdlib: bool = True,
    store_dir: Optional[Union[str, Path]] = None,
) -> ScriptProfile:
    """Execute a Python script file under IncProf collection.

    The script runs as ``__main__`` (like ``python script.py``) with
    ``sys.argv`` temporarily replaced.  With ``exclude_stdlib`` the
    snapshots keep only functions defined outside the interpreter's
    installation (the analogue of gprof only seeing the ``-pg`` binary's
    own symbols, not libc's).
    """
    script_path = Path(script_path)
    if not script_path.is_file():
        raise CollectorError(f"no such script: {script_path}")

    file_filter = None
    name_filter: Optional[NameFilter] = None
    if exclude_stdlib:
        # The analogue of gprof seeing only the -pg binary's own symbols:
        # frames defined inside the interpreter installation (stdlib,
        # site-packages, frozen importlib) fold into their callers.
        prefix = sys.prefix
        base_prefix = sys.base_prefix

        def file_filter(filename: str) -> bool:
            return not (
                filename.startswith(prefix)
                or filename.startswith(base_prefix)
                or filename.startswith("<")
            )

        machinery = {"<module>", "_run_code", "_run_module_code", "run_path", "run"}
        name_filter = lambda name: name not in machinery  # noqa: E731

    saved_argv = sys.argv
    sys.argv = [str(script_path), *argv]
    try:
        def run():
            return runpy.run_path(str(script_path), run_name="__main__")

        return profile_callable(
            run,
            interval=interval,
            sample_period=sample_period,
            name_filter=name_filter,
            file_filter=file_filter,
            store_dir=store_dir,
        )
    finally:
        sys.argv = saved_argv
