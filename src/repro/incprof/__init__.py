"""IncProf: the incremental profile collector.

The paper's tool is a preloaded library whose background thread wakes once
per interval, invokes glibc's hidden gmon write function, and renames the
dump to a unique per-interval sample file.  This package reproduces that
collection loop in both execution modes:

- :class:`~repro.incprof.collector.VirtualSnapshotCollector` hooks the
  simulated clock (exact 1 s wake-ups, dump cost charged to the timeline);
- :class:`~repro.incprof.collector.LiveCollector` is a real daemon thread
  snapshotting a :class:`~repro.profiler.tracing.TracingProfiler`.

:class:`~repro.incprof.storage.SampleStore` handles the per-interval file
naming and loading; :class:`~repro.incprof.session.Session` orchestrates a
full collection run of a workload across simulated MPI ranks.
"""

from repro.incprof.collector import VirtualSnapshotCollector, LiveCollector
from repro.incprof.storage import SampleStore
from repro.incprof.session import Session, SessionConfig, SessionResult
from repro.incprof.script_runner import ScriptProfile, profile_callable, profile_script

__all__ = [
    "VirtualSnapshotCollector",
    "LiveCollector",
    "SampleStore",
    "Session",
    "SessionConfig",
    "SessionResult",
    "ScriptProfile",
    "profile_callable",
    "profile_script",
]
