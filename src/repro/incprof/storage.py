"""Per-interval sample files.

IncProf renames each gmon dump to a unique sample name; analysis later
loads the ordered sequence per rank.  File layout::

    <dir>/gmon-r<rank:03d>-i<index:05d>.gmon

Indices are the collection order (interval number), which the loader uses
to return samples sorted by interval.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Union

from repro.gprof.gmon import GmonData, read_gmon, write_gmon
from repro.util.errors import CollectorError

_NAME_RE = re.compile(r"^gmon-r(?P<rank>\d{3})-i(?P<index>\d{5})\.gmon$")


class SampleStore:
    """Directory-backed store of per-interval gmon samples."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise CollectorError(f"sample directory {self.directory} does not exist")

    def path_for(self, rank: int, index: int) -> Path:
        if rank < 0 or index < 0:
            raise CollectorError("rank and index must be non-negative")
        return self.directory / f"gmon-r{rank:03d}-i{index:05d}.gmon"

    def save(self, sample: GmonData, index: int) -> Path:
        """Persist one snapshot under its (rank, interval-index) name."""
        path = self.path_for(sample.rank, index)
        write_gmon(sample, path)
        return path

    def ranks(self) -> List[int]:
        """Ranks that have at least one sample file, sorted."""
        ranks = set()
        for path in self.directory.glob("gmon-r*-i*.gmon"):
            m = _NAME_RE.match(path.name)
            if m:
                ranks.add(int(m.group("rank")))
        return sorted(ranks)

    def load_rank(self, rank: int) -> List[GmonData]:
        """All samples of ``rank`` in interval order."""
        indexed: Dict[int, Path] = {}
        for path in self.directory.glob(f"gmon-r{rank:03d}-i*.gmon"):
            m = _NAME_RE.match(path.name)
            if m:
                indexed[int(m.group("index"))] = path
        return [read_gmon(indexed[i]) for i in sorted(indexed)]

    def load_all(self) -> Dict[int, List[GmonData]]:
        """Samples for every rank present in the store."""
        return {rank: self.load_rank(rank) for rank in self.ranks()}
