"""Deprecated per-interval sample-file store (compatibility shim).

:class:`SampleStore` was the original storage surface: four ad-hoc load
methods over a directory of loose ``gmon-r<rank>-i<index>.gmon`` files.
The unified interface replaced it — :class:`repro.store.IntervalStore`
with :class:`~repro.store.loose.LooseStore` (this exact on-disk layout)
and :class:`~repro.store.segments.SegmentStore` (the tiered segment
layout) as backends, and ``scan(stream_id, since)`` as the one read
primitive.

This class remains so old callers and old sample directories keep
working: it *is* a ``LooseStore`` plus thin deprecated wrappers mapping
each legacy method onto ``scan``.  New code should use the interface
directly (see ``docs/API.md`` for the migration table).

.. deprecated::
    ``save`` → ``append(str(rank), index, sample)``;
    ``load_rank`` / ``load_rank_since`` / ``load_all`` → ``scan``;
    ``ranks`` → ``streams``.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Dict, Iterator, List, Tuple

from repro.gprof.gmon import GmonData
from repro.store.loose import LooseStore
from repro.util.errors import SampleFileError

__all__ = ["SampleFileError", "SampleStore"]


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"SampleStore.{old} is deprecated; use IntervalStore.{new} "
        "(repro.store) instead",
        DeprecationWarning, stacklevel=3)


class SampleStore(LooseStore):
    """Directory-backed store of per-interval gmon samples (deprecated).

    Every method is a thin wrapper over the :class:`LooseStore` /
    :class:`~repro.store.interface.IntervalStore` surface it aliases.
    """

    def save(self, sample: GmonData, index: int) -> Path:
        """Persist one snapshot under its (rank, interval-index) name.

        Deprecated alias of ``append(str(sample.rank), index, sample)``;
        kept (without a warning) because collectors still constructed on
        this class call it on every interval.
        """
        path = self.path_for(sample.rank, index)
        self.append(str(sample.rank), index, sample)
        return path

    def ranks(self) -> List[int]:
        """Ranks that have at least one sample file, sorted."""
        _deprecated("ranks", "streams")
        return [int(s) for s in self.streams()]

    def load_rank(self, rank: int) -> List[GmonData]:
        """All samples of ``rank`` in interval order."""
        _deprecated("load_rank", "scan")
        return [sample for _index, sample in self.scan(str(rank))]

    def load_rank_since(self, rank: int,
                        after_index: int = -1) -> List[Tuple[int, GmonData]]:
        """Samples of ``rank`` with interval index > ``after_index``."""
        _deprecated("load_rank_since", "scan")
        return list(self.scan(str(rank), since=after_index))

    def load_all(self) -> Dict[int, Iterator[GmonData]]:
        """A lazy per-rank sample iterator for every rank — one directory
        pass.

        Returns ``{rank: iterator of samples in interval order}``.
        Earlier versions returned fully materialized lists, which pinned
        every snapshot of every rank in memory at once; peak RSS is now
        one snapshot per consumed iterator regardless of store size.
        Corrupt files raise :class:`SampleFileError` when their iterator
        reaches them, not at call time.
        """
        _deprecated("load_all", "scan")
        scanned = self._scan()

        def tail(indexed) -> Iterator[GmonData]:
            for i in sorted(indexed):
                yield self._read(indexed[i])

        return {rank: tail(indexed)
                for rank, indexed in sorted(scanned.items())}
