"""Per-interval sample files.

IncProf renames each gmon dump to a unique sample name; analysis later
loads the ordered sequence per rank.  File layout::

    <dir>/gmon-r<rank:03d>-i<index:05d>.gmon

Indices are the collection order (interval number), which the loader uses
to return samples sorted by interval.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Tuple, Union

from repro.gprof.gmon import GmonData, dumps_gmon, read_gmon
from repro.util.atomicio import atomic_write_bytes
from repro.util.errors import CollectorError, FormatError, SampleFileError

__all__ = ["SampleFileError", "SampleStore"]

_NAME_RE = re.compile(r"^gmon-r(?P<rank>\d{3})-i(?P<index>\d{5})\.gmon$")


class SampleStore:
    """Directory-backed store of per-interval gmon samples."""

    def __init__(self, directory: Union[str, Path], create: bool = True) -> None:
        self.directory = Path(directory)
        if create:
            self.directory.mkdir(parents=True, exist_ok=True)
        elif not self.directory.is_dir():
            raise CollectorError(f"sample directory {self.directory} does not exist")

    def path_for(self, rank: int, index: int) -> Path:
        if rank < 0 or index < 0:
            raise CollectorError("rank and index must be non-negative")
        return self.directory / f"gmon-r{rank:03d}-i{index:05d}.gmon"

    def save(self, sample: GmonData, index: int) -> Path:
        """Persist one snapshot under its (rank, interval-index) name.

        The write is atomic (same-directory temp file + rename): an
        analysis pass scanning the store concurrently, or a crash
        mid-dump, can never observe a half-written sample.
        """
        path = self.path_for(sample.rank, index)
        return atomic_write_bytes(path, dumps_gmon(sample))

    def _scan(self) -> Dict[int, Dict[int, Path]]:
        """One directory pass: ``{rank: {interval_index: path}}``.

        Every query below is built on this single scan; the old layout
        (one ``glob`` per rank inside a loop over ``ranks()``) walked the
        directory O(ranks) times, which dominates load time once a fleet
        of ranks has dumped thousands of intervals.
        """
        index: Dict[int, Dict[int, Path]] = {}
        for path in self.directory.iterdir():
            m = _NAME_RE.match(path.name)
            if m:
                index.setdefault(int(m.group("rank")), {})[int(m.group("index"))] = path
        return index

    @staticmethod
    def _read(path: Path) -> GmonData:
        try:
            return read_gmon(path)
        except (FormatError, OSError) as exc:
            raise SampleFileError(path, exc) from exc

    def ranks(self) -> List[int]:
        """Ranks that have at least one sample file, sorted."""
        return sorted(self._scan())

    def load_rank(self, rank: int) -> List[GmonData]:
        """All samples of ``rank`` in interval order."""
        indexed = self._scan().get(rank, {})
        return [self._read(indexed[i]) for i in sorted(indexed)]

    def load_rank_since(self, rank: int,
                        after_index: int = -1) -> List[Tuple[int, GmonData]]:
        """Samples of ``rank`` with interval index > ``after_index``.

        The polling primitive behind ``incprof analyze --follow``: a live
        tail re-scans the directory each poll but reads only the dumps
        past its watermark, so each poll costs O(new files) reads rather
        than re-loading the whole run.  Returns ``(index, sample)`` pairs
        in interval order so the caller can advance its watermark.
        """
        indexed = self._scan().get(rank, {})
        return [(i, self._read(indexed[i]))
                for i in sorted(indexed) if i > after_index]

    def load_all(self) -> Dict[int, List[GmonData]]:
        """Samples for every rank, ordered by interval — one directory scan."""
        return {
            rank: [self._read(indexed[i]) for i in sorted(indexed)]
            for rank, indexed in sorted(self._scan().items())
        }
