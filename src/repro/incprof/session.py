"""Collection sessions: run a workload under IncProf and/or AppEKG.

A :class:`Session` builds, per simulated rank, the full stack the paper
deploys on a real node — execution engine, gprof-style sampling profiler,
IncProf snapshot collector, optional heartbeat instrumentation — runs the
workload, and returns per-rank sample series and heartbeat records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.apps.base import AppModel
from repro.gprof.gmon import GmonData
from repro.heartbeat.api import AppEKG
from repro.heartbeat.instrument import HeartbeatInstrumentation, SiteBinding
from repro.incprof.collector import VirtualSnapshotCollector
from repro.store.interface import IntervalStore
from repro.store.loose import LooseStore
from repro.profiler.sampling import DEFAULT_SAMPLE_PERIOD, SamplingProfiler
from repro.simulate.engine import Engine
from repro.simulate.mpi import RankResult, SimComm
from repro.simulate.overhead import CostModel
from repro.util.errors import ValidationError
from repro.util.rng import rng_stream

#: Default experiment seed.  The paper reports one measured run per
#: application; this seed is our "measured run" and is fixed so the
#: regenerated tables and figures are reproducible.
DEFAULT_SEED = 111


@dataclass(frozen=True)
class SessionConfig:
    """How to run a collection session.

    ``collect_profiles`` attaches IncProf (gprof runtime + 1 s snapshot
    thread); ``heartbeat_sites`` attaches AppEKG instrumentation;
    ``charge_costs`` enables the overhead cost model (disable it for
    analysis-only runs where the timeline should be the plain build's).
    """

    interval: float = 1.0
    sample_period: float = DEFAULT_SAMPLE_PERIOD
    ranks: Optional[int] = None  # None: the app's paper configuration
    seed: int = DEFAULT_SEED
    scale: float = 1.0
    collect_profiles: bool = True
    heartbeat_sites: Optional[Sequence[SiteBinding]] = None
    charge_costs: bool = False
    cost_model: Optional[CostModel] = None
    store_dir: Optional[Union[str, Path]] = None
    #: On-disk layout for ``store_dir``: ``"loose"`` (one gmon file per
    #: interval, the legacy layout) or ``"segments"`` (the tiered
    #: columnar segment store — see ``docs/STORAGE.md``).
    store_format: str = "loose"
    #: SIGPROF timer-jitter model for the sampling profiler (see
    #: :class:`~repro.profiler.sampling.SamplingProfiler`).
    sampling_jitter: float = 0.12

    def __post_init__(self) -> None:
        if self.interval <= 0 or self.sample_period <= 0:
            raise ValidationError("interval and sample period must be positive")
        if self.scale <= 0:
            raise ValidationError("scale must be positive")
        if self.store_format not in ("loose", "segments"):
            raise ValidationError(
                f"store_format must be 'loose' or 'segments', "
                f"not {self.store_format!r}")


@dataclass
class SessionResult:
    """Per-rank outcomes of one session."""

    app_name: str
    config: SessionConfig
    per_rank: List[RankResult] = field(default_factory=list)

    @property
    def rank0(self) -> RankResult:
        return self.per_rank[0]

    def samples(self, rank: int = 0):
        return self.per_rank[rank].samples

    def heartbeat_records(self, rank: int = 0):
        return self.per_rank[rank].heartbeat_records

    @property
    def runtime(self) -> float:
        """Representative (rank 0) virtual runtime."""
        return self.rank0.runtime

    # ------------------------------------------------------------------
    # stream export (the ``incprofd`` publishing hook)
    # ------------------------------------------------------------------
    def stream_events(self) -> Iterator[Tuple[int, int, "GmonData"]]:
        """Yield ``(rank, seq, snapshot)`` across all ranks, merged by time.

        This is the event order a fleet service would see: every rank's
        cumulative dumps interleaved by snapshot timestamp (ties broken
        by rank then interval index, so the feed is deterministic).
        ``seq`` is the per-rank interval index publishers put on the wire.
        """
        events = [
            (snap.timestamp, rank_result.rank, seq, snap)
            for rank_result in self.per_rank
            for seq, snap in enumerate(rank_result.samples)
        ]
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        for _ts, rank, seq, snap in events:
            yield rank, seq, snap

    def publish(self, publisher: Callable[[int, int, "GmonData"], None]) -> int:
        """Replay every snapshot through ``publisher(rank, seq, snapshot)``.

        Returns the number of events delivered.  The service client's
        helpers build on this; any callable works (a test sink, a custom
        exporter, a :class:`~repro.service.client.PhaseClient` wrapper).
        """
        count = 0
        for rank, seq, snap in self.stream_events():
            publisher(rank, seq, snap)
            count += 1
        return count


class Session:
    """Runs one app under the configured instrumentation."""

    def __init__(self, app: AppModel, config: SessionConfig = SessionConfig()) -> None:
        self.app = app
        self.config = config
        self._store: Optional[IntervalStore] = None

    def _get_store(self) -> Optional[IntervalStore]:
        """One store instance shared by every rank of the session.

        Segment stores buffer appends and own the manifest, so ranks
        must share a single instance (flushed when :meth:`run` returns)
        rather than each opening the directory independently.
        """
        if self.config.store_dir is None:
            return None
        if self._store is None:
            root = Path(self.config.store_dir)
            if self.config.store_format == "segments":
                from repro.store.segments import SegmentStore

                self._store = SegmentStore(root)
            else:
                self._store = LooseStore(root)
        return self._store

    # ------------------------------------------------------------------
    def _cost_model(self) -> CostModel:
        if self.config.cost_model is not None:
            return self.config.cost_model
        if not self.config.charge_costs:
            return CostModel.disabled()
        if self.config.collect_profiles:
            return CostModel.gprof_defaults()
        if self.config.heartbeat_sites:
            return CostModel.heartbeat_only()
        return CostModel.disabled()

    def run_rank(self, rank: int) -> RankResult:
        """Execute one rank's full collection run."""
        config = self.config
        rng = rng_stream(config.seed, self.app.name, "rank", rank)
        engine = Engine(
            cost_model=self._cost_model(),
            rank=rank,
            rng=rng,
            params={"scale": config.scale},
        )

        collector: Optional[VirtualSnapshotCollector] = None
        if config.collect_profiles:
            profiler = SamplingProfiler(
                sample_period=config.sample_period,
                rank=rank,
                jitter_sigma=config.sampling_jitter,
                rng=rng_stream(config.seed, self.app.name, "sampler", rank),
            )
            engine.add_observer(profiler)
            collector = VirtualSnapshotCollector(
                engine, profiler, interval=config.interval,
                store=self._get_store()
            )

        appekg: Optional[AppEKG] = None
        if config.heartbeat_sites:
            bindings = list(config.heartbeat_sites)
            appekg = AppEKG(
                num_heartbeats=max(b.hb_id for b in bindings),
                rank=rank,
                interval=config.interval,
                time_source=lambda: engine.clock.now,
            )
            engine.add_observer(HeartbeatInstrumentation(engine, appekg, bindings))

        engine.run(self.app.build_main(config.scale))

        samples = collector.finalize() if collector else []
        records = appekg.finalize(now=engine.clock.now) if appekg else []
        return RankResult(
            rank=rank,
            runtime=engine.clock.now,
            samples=samples,
            heartbeat_records=list(records),
            total_calls=engine.total_calls,
            total_attributed=engine.total_attributed,
            total_overhead=engine.total_overhead,
        )

    def run(self) -> SessionResult:
        """Run every rank; rank 0 is the paper's representative process."""
        n_ranks = self.config.ranks if self.config.ranks is not None else self.app.default_ranks
        comm = SimComm(n_ranks)
        try:
            results = comm.run(self.run_rank)
        finally:
            if self._store is not None:
                self._store.close()
                self._store = None
        return SessionResult(app_name=self.app.name, config=self.config, per_rank=results)
