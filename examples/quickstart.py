"""Quickstart: collect incremental profiles and discover phases.

Runs a scaled-down Graph500 workload under the IncProf collector, then
runs the full analysis pipeline (interval differencing -> k-means ->
elbow -> Algorithm 1) and prints the discovered phases and
instrumentation sites.

Run:  python examples/quickstart.py
"""

from repro.api import Session, SessionConfig, analyze_snapshots
from repro.apps import get_app
from repro.core.report import render_full_report

def main() -> None:
    app = get_app("graph500")

    # 1. Collect: one rank, 1-second intervals, quarter-scale run.
    session = Session(app, SessionConfig(ranks=1, scale=0.25, interval=1.0))
    result = session.run()
    samples = result.samples(rank=0)
    print(f"collected {len(samples)} cumulative profile snapshots "
          f"over a {result.runtime:.0f}s (virtual) run\n")

    # 2. Analyze: phases + instrumentation sites.
    analysis = analyze_snapshots(samples)
    print(f"discovered {analysis.n_phases} phases\n")
    for selected in analysis.sites():
        print(f"  phase {selected.phase_id}: instrument {selected.function!r} "
              f"({selected.inst_type.value}) — covers {selected.phase_pct:.0f}% "
              f"of the phase, {selected.app_pct:.0f}% of the run")

    # 3. Full report (paper-style table, phase summary, k sweep).
    print()
    print(render_full_report(analysis, app_name="graph500",
                             manual_sites=app.manual_sites))


if __name__ == "__main__":
    main()
