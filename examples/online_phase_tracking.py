"""Deployment-style online phase tracking.

The paper's production scenario end to end: discovery runs *once*
offline; afterwards, deployed runs stream their incremental profile
dumps and are classified live against the trained phase model — with
novel behaviour (here: a run whose input triggers an unseen computation)
flagged the moment it appears.

Run:  python examples/online_phase_tracking.py
"""

from repro.api import OnlinePhaseTracker, Session, SessionConfig, analyze_snapshots
from repro.apps.synthetic import PhaseSpec, Synthetic
from repro.core.timeline import phase_strip, render_timeline


def main() -> None:
    app = Synthetic()

    # ---- offline: one profiled run, phases discovered ----
    train = Session(app, SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(train.samples(0))
    print(render_timeline(analysis, width=90))
    tracker = OnlinePhaseTracker.from_analysis(analysis)

    # ---- deployment run 1: same workload, new seed ----
    deploy = Session(app, SessionConfig(ranks=1, seed=2024)).run()
    for snapshot in deploy.samples(0):
        tracker.observe_snapshot(snapshot)
    print("\ndeployment run (same workload):")
    print("  " + phase_strip(tracker.phase_sequence(), width=90))
    print(f"  novel intervals: {tracker.novel_fraction():.1%}, "
          f"{len(tracker.transitions())} phase transitions")

    # ---- deployment run 2: a misbehaving run with an unseen stage ----
    anomalous_script = list(app.ground_truth_phases())
    anomalous_script.insert(
        2, PhaseSpec("rogue", 15.0, (("garbage_collect", 0.7, 3.0),))
    )
    rogue_app = Synthetic(tuple(anomalous_script))
    tracker2 = OnlinePhaseTracker.from_analysis(analysis)
    rogue = Session(rogue_app, SessionConfig(ranks=1, seed=7)).run()
    for snapshot in rogue.samples(0):
        tracker2.observe_snapshot(snapshot)
    sequence = tracker2.phase_sequence()
    print("\ndeployment run with an unseen mid-run stage:")
    print("  " + phase_strip(sequence, width=90))
    print(f"  novel intervals: {tracker2.novel_fraction():.1%} "
          "(the '!' stretch is the rogue stage)")

    first_novel = next((t.index for t in tracker2.history if t.is_novel), None)
    if first_novel is not None:
        print(f"  first alert at interval {first_novel} "
              f"(~{first_novel}s into the run)")


if __name__ == "__main__":
    main()
