"""Live mode: profile a *real* Python execution.

Runs MiniFE's genuine NumPy kernels (structure generation, assembly,
Dirichlet conditions, a hand-rolled conjugate-gradient solve) under the
``sys.setprofile`` tracing profiler while a real IncProf background
thread snapshots the cumulative profile twice a second — the exact
pipeline the paper runs against gprof data, applied to live Python.

Run:  python examples/live_python_profiling.py
"""

import time

from repro.api import AnalysisConfig, analyze_snapshots
from repro.apps import get_app
from repro.gprof.flatprofile import FlatProfile
from repro.incprof.collector import LiveCollector
from repro.profiler.tracing import TracingProfiler, names_filter


def main() -> None:
    app = get_app("minife")
    live = app.live_run()
    assert live is not None

    interval = 0.25
    profiler = TracingProfiler(
        sample_period=0.005,
        name_filter=names_filter(live.function_names),
    )
    collector = LiveCollector(profiler, interval=interval)

    print("running real CG solve under the live profiler...")
    start = time.perf_counter()
    collector.start()
    with profiler:
        # Two full passes of a large problem so the run spans many
        # collection intervals (structure/assembly/solve phases repeat).
        for _ in range(2):
            live.main(4.2)
    samples = collector.stop()
    elapsed = time.perf_counter() - start
    print(f"{elapsed:.1f}s wall, {len(samples)} profile snapshots\n")

    # The final cumulative snapshot is a classic flat profile:
    print(FlatProfile.from_gmon(samples[-1]).render())

    # And the snapshot *series* feeds the same phase analysis the
    # simulated runs use (short run: allow a small k).
    if len(samples) >= 4:
        analysis = analyze_snapshots(
            samples, AnalysisConfig(kmax=4, drop_short_final=False)
        )
        print(f"live run phases: {analysis.n_phases}")
        for selected in analysis.sites():
            print(f"  phase {selected.phase_id}: {selected.function} "
                  f"[{selected.inst_type.value}] ({selected.phase_pct:.0f}% of phase)")
    else:
        print("run too short for phase analysis; increase the scale")


def sigprof_demo() -> None:
    """The same live run under a *real* SIGPROF statistical sampler.

    Where the tracing profiler measures deterministically, this one does
    exactly what gprof does: an ITIMER_PROF interval timer whose signal
    handler attributes one tick to the currently executing function —
    genuine sampling error, CPU-time-only, main thread.
    """
    from repro.profiler.sigprof import SigprofSampler

    app = get_app("minife")
    live = app.live_run()
    sampler = SigprofSampler(sample_period=0.005,
                             name_filter=names_filter(live.function_names))
    with sampler:
        live.main(3.0)
    print(f"\nSIGPROF sampler: {sampler.total_samples} statistical samples")
    print(FlatProfile.from_gmon(sampler.snapshot()).render())


if __name__ == "__main__":
    main()
    sigprof_demo()
