"""Fleet-scale phase monitoring with ``incprofd``, end to end.

The paper's deployment scenario at service scale: discovery runs *once*
offline; then a fleet of ranks streams incremental profile dumps into a
long-running daemon, which classifies every interval online and
aggregates phase occupancy, novelty alerts, and per-stream lag — while a
misbehaving run lights up the novelty counters the moment it appears.

Run:  python examples/fleet_monitoring.py
"""

import tempfile
from pathlib import Path

from repro.api import (
    Session,
    SessionConfig,
    analyze_snapshots,
    load_model,
    publish_samples,
    publish_session,
    save_model,
)
from repro.apps.synthetic import PhaseSpec, Synthetic
from repro.core.timeline import phase_strip
from repro.service import Endpoint, PhaseMonitorServer, ServerConfig


def main() -> None:
    app = Synthetic()

    # ---- offline: one profiled run, phases discovered, tracker trained ----
    train = Session(app, SessionConfig(ranks=1, seed=111)).run()
    analysis = analyze_snapshots(train.samples(0))
    print(f"offline training: {analysis.n_phases} phases from "
          f"{analysis.interval_data.n_intervals} intervals")

    # ---- the model is a durable artifact: save, ship, load anywhere ----
    with tempfile.TemporaryDirectory() as tmp:
        artifact = save_model(analysis, Path(tmp) / "synthetic.ipm")
        print(f"phase model artifact: {artifact.name} "
              f"({artifact.stat().st_size} bytes)")
        template = load_model(artifact)

    # ---- the daemon: ephemeral loopback port, blocking backpressure ----
    config = ServerConfig(endpoint=Endpoint.tcp("127.0.0.1", 0), workers=4)
    with PhaseMonitorServer(template, config) as server:
        print(f"incprofd listening on {server.endpoint} "
              f"(policy={config.policy}, queue={config.queue_capacity})\n")

        # ---- a healthy 4-rank deployment run streams in concurrently ----
        fleet = Session(app, SessionConfig(ranks=4, seed=777)).run()
        reports = publish_session(server.endpoint, fleet, stream_prefix="node")
        print("healthy fleet:")
        for stream_id in sorted(reports):
            rep = reports[stream_id]
            strip = phase_strip(rep.phase_sequence, width=60)
            print(f"  {stream_id}: {strip}")
            print(f"  {'':>{len(stream_id)}}  sent={rep.sent} "
                  f"classified={rep.processed} novel={rep.novel}")

        # ---- one rogue run: an input regime never seen in training ----
        rogue_script = list(app.ground_truth_phases())
        rogue_script.insert(
            2, PhaseSpec("rogue", 15.0, (("garbage_collect", 0.7, 3.0),))
        )
        rogue = Session(Synthetic(rogue_script),
                        SessionConfig(ranks=1, seed=555)).run()
        report = publish_samples(server.endpoint, "node-rogue",
                                 rogue.samples(0), app="synthetic")
        print("\nrogue stream (unseen phase injected):")
        print(f"  node-rogue: {phase_strip(report.phase_sequence, width=60)}")
        print(f"  novel intervals: {report.novel}/{report.processed} "
              f"('!' marks above)")

        # ---- the fleet view a dashboard would poll ----
        stats = server.stats()
        status = server.fleet_status()
        print("\nservice stats:")
        print(f"  ingest: {stats['processed']}/{stats['ingested']} classified, "
              f"{stats['ingest_rate']:.0f} intervals/s, drops={stats['drops']}")
        latency = stats["classify_latency"]
        print(f"  classify latency: p50={latency['p50'] * 1e3:.2f} ms "
              f"p99={latency['p99'] * 1e3:.2f} ms")
        print("  fleet phase occupancy:")
        for phase, occ in status["phase_occupancy"].items():
            label = "novel !" if phase == "-1" else f"phase {phase}"
            print(f"    {label:>8s}: {occ['intervals']:4d} intervals "
                  f"({occ['share']:.1%})")
    print("\ndaemon stopped cleanly")


if __name__ == "__main__":
    main()
