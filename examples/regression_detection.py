"""Detecting a performance regression from heartbeat history.

The paper's production vision (Section III): "as a history of an
application is built up this data can be used to identify when the
application is running poorly and when it is running well."  This
example builds that loop end to end:

1. discover LAMMPS's phases and instrument the discovered sites;
2. record a *baseline* heartbeat run;
3. record a *degraded* run — the same workload on a "slow node"
   (modeled as a 25 % stretch of all attributed work, e.g. thermal
   throttling or a noisy neighbour);
4. compare the two histories and flag the regression.

Run:  python examples/regression_detection.py
"""

from repro.api import Session, SessionConfig, analyze_snapshots
from repro.apps import get_app
from repro.heartbeat.analysis import series_from_records
from repro.heartbeat.compare import compare_series
from repro.heartbeat.instrument import bindings_from_sites
from repro.simulate.overhead import CostModel


def heartbeat_run(app, bindings, scale, seed, slow_factor=0.0):
    """One production run; slow_factor stretches every unit of work."""
    cost = CostModel(per_call=0.0, sampling_fraction=slow_factor,
                     per_dump=0.0, per_heartbeat_event=0.0)
    config = SessionConfig(ranks=1, scale=scale, seed=seed,
                           collect_profiles=False, heartbeat_sites=bindings,
                           charge_costs=slow_factor > 0.0, cost_model=cost)
    result = Session(app, config).run()
    labels = {b.hb_id: f"{b.function} ({b.inst_type.value})" for b in bindings}
    return series_from_records(result.heartbeat_records(0), interval=1.0,
                               labels=labels)


def main() -> None:
    app = get_app("lammps")
    scale = 0.4

    # Phase discovery once, instrumentation reused across all runs.
    collect = Session(app, SessionConfig(ranks=1, scale=scale)).run()
    analysis = analyze_snapshots(collect.samples(0))
    bindings = bindings_from_sites([s.site for s in analysis.sites()])
    print(f"instrumenting {len(bindings)} discovered sites\n")

    baseline = heartbeat_run(app, bindings, scale, seed=1)
    healthy = heartbeat_run(app, bindings, scale, seed=2)
    degraded = heartbeat_run(app, bindings, scale, seed=3, slow_factor=0.25)

    print("healthy run vs baseline:")
    report = compare_series(baseline, healthy)
    print(report.to_table().render())
    print(f"verdict: {'healthy' if report.is_healthy() else 'REGRESSED'}\n")

    print("degraded run (25% slow node) vs baseline:")
    report = compare_series(baseline, degraded)
    print(report.to_table().render())
    regressions = report.regressions()
    print(f"verdict: {len(regressions)} regressed heartbeat(s): "
          + ", ".join(d.label for d in regressions))


if __name__ == "__main__":
    main()
