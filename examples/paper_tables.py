"""Regenerate the paper's evaluation tables.

Runs the full methodology (collect -> analyze -> instrument -> measure
overheads) for all five applications and prints Table I plus each app's
instrumented-functions table next to the paper's published numbers.

Run:  python examples/paper_tables.py            (full paper-scale runs)
      python examples/paper_tables.py --scale .3 (faster)
"""

import argparse

from repro.apps import app_names
from repro.eval.experiments import run_experiment
from repro.eval.tables import (
    app_sites_table,
    comparison_table,
    paper_sites_table,
    table1,
    table1_comparison,
)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--app", choices=app_names(), default=None,
                        help="restrict to one application")
    args = parser.parse_args()

    names = [args.app] if args.app else app_names()
    results = {name: run_experiment(name, scale=args.scale) for name in names}

    print(table1(results).render())
    print()
    print(table1_comparison(results).render())
    for name, result in results.items():
        print()
        print(app_sites_table(result).render())
        print()
        print(paper_sites_table(name).render())
        print()
        print(comparison_table(result).render())


if __name__ == "__main__":
    main()
