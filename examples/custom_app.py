"""Using the workload DSL to model and analyze your own application.

Defines a small three-phase pipeline application (ingest -> transform ->
write-back with a periodic compaction), runs it under IncProf, and lets
phase discovery find the structure — demonstrating what a user would do
to evaluate instrumentation sites for an app of their own before touching
its source.

Run:  python examples/custom_app.py
"""

from repro.api import Session, SessionConfig, analyze_snapshots
from repro.apps.base import AppModel, chunked_work, leaf
from repro.core.model import InstType, Site
from repro.core.report import render_full_report
from repro.simulate.engine import SimFunction

parse_record = leaf("parse_record")
hash_join = leaf("hash_join")


def _ingest(ctx) -> None:
    # 40 seconds of high-rate record parsing.
    for _ in range(40):
        ctx.call_batch(parse_record, 2_000_000, ctx.rng.uniform(0.9, 1.05))


def _transform(ctx) -> None:
    # One long call: joins proceed in waves (loop-instrumentable).
    for _ in range(70):
        ctx.call_batch(hash_join, 400_000, ctx.rng.uniform(0.55, 0.7))
        ctx.work(ctx.rng.uniform(0.25, 0.35))
        ctx.loop_tick()


def _writeback(ctx) -> None:
    chunked_work(ctx, total=30.0, chunk=0.4)
    ctx.idle(0.5)


def _compact(ctx) -> None:
    chunked_work(ctx, total=3.0, chunk=0.2)


ingest = SimFunction("ingest", _ingest)
transform = SimFunction("transform", _transform)
writeback = SimFunction("write_back", _writeback)
compact = SimFunction("compact_segments", _compact)


class PipelineApp(AppModel):
    """A synthetic ETL-style pipeline with a periodic compaction."""

    name = "pipeline"
    default_ranks = 1
    default_nodes = 1

    def build_main(self, scale: float = 1.0):
        def _main(ctx):
            ctx.call(ingest)
            ctx.call(transform)
            ctx.call(compact)
            ctx.call(writeback)
        return SimFunction("main", _main)

    @property
    def manual_sites(self):
        return (Site("ingest", InstType.BODY), Site("transform", InstType.LOOP))


def main() -> None:
    app = PipelineApp()
    result = Session(app, SessionConfig(ranks=1)).run()
    analysis = analyze_snapshots(result.samples(0))
    print(render_full_report(analysis, app_name="pipeline",
                             manual_sites=app.manual_sites))

    print("\nInterpretation:")
    for selected in analysis.sites():
        kind = ("wrap the function body" if selected.inst_type is InstType.BODY
                else "instrument a loop inside the function")
        print(f"  phase {selected.phase_id}: {kind} of {selected.function!r}")


if __name__ == "__main__":
    main()
