"""Production-style heartbeat monitoring with AppEKG.

Discovers MiniAMR's phases, instruments the discovered sites, re-runs the
app with heartbeats flowing through an LDMS-style transport (the
decoupled pull model the paper integrates with), and then analyzes the
heartbeat series: rates, durations, activity gaps — the "EKG" view of
the application, including the mesh-adaptation deviation the paper's
Figure 4 highlights.

Run:  python examples/heartbeat_monitoring.py
"""

from repro.api import Session, SessionConfig, analyze_snapshots
from repro.apps import get_app
from repro.heartbeat import LDMSTransport
from repro.heartbeat.analysis import series_from_records
from repro.heartbeat.api import AppEKG
from repro.heartbeat.instrument import HeartbeatInstrumentation, bindings_from_sites
from repro.incprof.session import DEFAULT_SEED
from repro.profiler.sampling import SamplingProfiler
from repro.incprof.collector import VirtualSnapshotCollector
from repro.simulate.engine import Engine
from repro.util.rng import rng_stream


def main() -> None:
    app = get_app("miniamr")
    scale = 0.5

    # Phase discovery pass.
    collect = Session(app, SessionConfig(ranks=1, scale=scale)).run()
    analysis = analyze_snapshots(collect.samples(0))
    bindings = bindings_from_sites([s.site for s in analysis.sites()])
    print(f"discovered {analysis.n_phases} phases; instrumenting "
          f"{len(bindings)} heartbeat sites:")
    for binding in bindings:
        print(f"  HB{binding.hb_id}: {binding.function} [{binding.inst_type.value}]")

    # Production pass: heartbeats -> LDMS transport -> subscriber.
    transport = LDMSTransport()
    received = []
    transport.subscribe(received.extend)

    engine = Engine(rank=0, rng=rng_stream(DEFAULT_SEED, app.name, "rank", 0),
                    params={"scale": scale})
    appekg = AppEKG(num_heartbeats=max(b.hb_id for b in bindings),
                    rank=0, interval=1.0, sink=transport,
                    time_source=lambda: engine.clock.now)
    engine.add_observer(HeartbeatInstrumentation(engine, appekg, bindings))
    # The system-side sampler pulls the metric set once per interval.
    engine.clock.schedule_every(1.0, lambda _t: transport.sample())
    engine.run(app.build_main(scale))
    appekg.finalize(now=engine.clock.now)
    transport.sample()  # final drain

    print(f"\nLDMS transport: {transport.updates} metric-set updates, "
          f"{transport.samples_taken} sampler pulls, "
          f"{transport.delivered} records delivered")

    # Analysis of the heartbeat series.
    labels = {b.hb_id: b.function for b in bindings}
    series = series_from_records(received, interval=1.0, labels=labels)
    print("\nper-heartbeat summary:")
    for row in series.summary():
        print(f"  HB{row['hb_id']:<2} {row['label']:<22} "
              f"count={row['total_count']:<10.0f} "
              f"rate={row['mean_rate_per_s']:<12.1f}/s "
              f"avg-dur={row['mean_duration_s']*1e3:8.3f} ms  "
              f"active {row['active_intervals']} intervals, "
              f"{row['n_gaps']} gaps")

    print()
    print(series.count_plot("MiniAMR heartbeat counts per interval",
                            width=90, height=12).render())


if __name__ == "__main__":
    main()
