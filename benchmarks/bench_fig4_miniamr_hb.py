"""Figure 4: MiniAMR phase heartbeats (discovered + manual)."""

from benchmarks._common import run_figure_bench


def test_fig4_miniamr(benchmark, experiments, save_artifact):
    figure = run_figure_bench(benchmark, experiments, save_artifact,
                              "miniamr", "fig4_miniamr_heartbeats")
    result = experiments["miniamr"]
    series = figure.discovered
    labels = {b.hb_id: b.function for b in result.discovered_bindings}

    # The mesh adaptation sits mid-run ("the large and varied deviation in
    # the middle"); the comm sites fire periodically through the run.
    alloc = next(i for i, f in labels.items() if f == "allocate")
    span = series.activity_span(alloc)
    n = series.n_intervals
    assert n * 0.3 < span[0] and span[1] < n * 0.7

    pack = next(i for i, f in labels.items() if f == "pack_block")
    pack_span = series.activity_span(pack)
    assert pack_span[1] - pack_span[0] > n * 0.5  # periodic across the run
    assert series.gaps(pack)  # bursts, not continuous

    # Manual sites are simultaneously active (the paper's criticism).
    assert figure.manual is not None
    manual_labels = {b.hb_id: b.function for b in result.manual_bindings}
    cs = next(i for i, f in manual_labels.items() if f == "check_sum")
    st = next(i for i, f in manual_labels.items() if f == "stencil_calc")
    cs_active = set(figure.manual.active_intervals(cs).tolist())
    st_active = set(figure.manual.active_intervals(st).tolist())
    overlap = len(cs_active & st_active) / max(1, len(cs_active))
    assert overlap > 0.9
