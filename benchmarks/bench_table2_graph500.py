"""Table II: Graph500 instrumented functions."""

import pytest

from benchmarks._common import run_table_bench
from repro.core.model import InstType


def test_table2_graph500(benchmark, experiments, save_artifact):
    result = run_table_bench(
        benchmark, experiments, save_artifact, "graph500",
        required_sites={
            ("validate_bfs_result", InstType.LOOP),
            ("run_bfs", InstType.BODY),
            ("run_bfs", InstType.LOOP),
            ("make_one_edge", InstType.BODY),
        },
        artifact="table2_graph500",
    )
    # Shape: validate dominates; edge generation ~11% of the app.
    shares = {}
    for s in result.analysis.sites():
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert max(shares, key=shares.get) == "validate_bfs_result"
    assert shares["make_one_edge"] == pytest.approx(10.8, abs=3.0)
