"""Methodology bench: detection accuracy against known ground truth.

None of the paper's applications has ground-truth phases; the authors
compare against their own manual instrumentation.  The synthetic
workload closes that gap, so this bench measures the *method* itself:

1. detection accuracy vs the phase-duration/interval ratio — a
   quantified version of the paper's Gadget2 finding that phases faster
   than the collection interval become invisible;
2. robustness of site recall when idle time dilutes the phases.
"""

import pytest

from repro.apps.synthetic import PhaseSpec, Synthetic, detection_accuracy
from repro.core.pipeline import analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.util.tables import Table


def staircase(phase_seconds: float) -> Synthetic:
    """Four equal phases of the given duration, distinct dominants."""
    functions = ("fn_a", "fn_b", "fn_c", "fn_d")
    script = tuple(
        PhaseSpec(f"p{i}", phase_seconds, ((name, 0.85, 20.0),))
        for i, name in enumerate(functions)
    )
    return Synthetic(script)


def run_accuracy(app: Synthetic, repeats: int = 1) -> dict:
    """One detection run; the app's script repeats as a whole ``repeats``
    times by scaling (phases stay the declared length)."""
    session = Session(app, SessionConfig(ranks=1, seed=111))
    analysis = analyze_snapshots(session.run().samples(0))
    return detection_accuracy(app, analysis)


def test_accuracy_vs_phase_duration(benchmark, save_artifact):
    table = Table(
        headers=["phase length (s)", "phase/interval ratio", "true k",
                 "detected k", "dominant recall"],
        title="Methodology: detection vs phase-duration/interval ratio "
              "(1 s intervals, ground-truth staircase)",
        float_fmt=".2f",
    )
    outcomes = {}
    for phase_seconds in (30.0, 10.0, 4.0, 2.0, 1.0, 0.4):
        app = staircase(phase_seconds)
        score = run_accuracy(app)
        outcomes[phase_seconds] = score
        table.add_row(phase_seconds, phase_seconds / 1.0, score["true_phases"],
                      score["detected_phases"], score["dominant_recall"])

    text = table.render()
    save_artifact("methodology_ground_truth", text)
    print()
    print(text)

    # Long phases: exact recovery.
    for phase_seconds in (30.0, 10.0, 4.0):
        assert outcomes[phase_seconds]["phase_count_error"] == 0
        assert outcomes[phase_seconds]["dominant_recall"] == 1.0
    # Sub-interval phases degrade — the paper's Gadget2 observation,
    # quantified: every interval is a mixture, so distinct phases blur.
    assert (outcomes[0.4]["detected_phases"] != 4
            or outcomes[0.4]["dominant_recall"] < 1.0)

    benchmark(run_accuracy, staircase(4.0))


def test_recall_vs_idle_dilution(benchmark, save_artifact):
    """Sites stay discoverable while phases are mostly *waiting*."""
    table = Table(
        headers=["busy share", "detected k", "dominant recall"],
        title="Methodology: recall vs idle dilution (4 true phases)",
        float_fmt=".2f",
    )
    results = {}
    for busy in (0.9, 0.5, 0.2, 0.05):
        script = tuple(
            PhaseSpec(f"p{i}", 25.0, ((name, busy, 20.0),))
            for i, name in enumerate(("fn_a", "fn_b", "fn_c", "fn_d"))
        )
        score = run_accuracy(Synthetic(script))
        results[busy] = score
        table.add_row(busy, score["detected_phases"], score["dominant_recall"])

    text = table.render()
    save_artifact("methodology_idle_dilution", text)
    print()
    print(text)

    # Even at 20% busy the dominant functions are all recovered; the
    # sampler needs *some* signal, so 5% busy is allowed to degrade.
    for busy in (0.9, 0.5, 0.2):
        assert results[busy]["dominant_recall"] == 1.0

    benchmark(run_accuracy, staircase(6.0))


def test_generated_scenario_accuracy_distribution(benchmark, save_artifact):
    """The eval as a *distribution*: generated scenarios, swept and scored.

    Where the staircase tests probe single axes (phase length, idle
    dilution), this sweeps a seeded population across the generator's
    difficulty tiers and pins the phase-recovery accuracy distribution:
    easy scenarios (long distinct-dominant phases) must recover almost
    perfectly, and accuracy must degrade monotonically with tier — the
    Metz & Lencevicius point that accuracy claims only hold across
    call-rate/duration regimes, made into a regression gate.
    """
    from repro.apps.generator import generate_scenario
    from repro.eval.scenarios import run_scenario, sweep_scenarios, sweep_table

    report = sweep_scenarios(n=30, seed=0)
    text = sweep_table(report).render()
    save_artifact("methodology_scenario_sweep", text)
    print()
    print(text)

    tiers = report["tiers"]
    assert tiers["easy"]["median_agreement"] >= 0.9
    assert tiers["medium"]["median_agreement"] >= 0.75
    assert tiers["hard"]["median_agreement"] >= 0.6
    assert (tiers["easy"]["median_agreement"]
            >= tiers["medium"]["median_agreement"]
            >= tiers["hard"]["median_agreement"] - 1e-9)
    # Every tier keeps ARI clearly above chance.
    for row in tiers.values():
        assert row["median_ari"] >= 0.4

    benchmark(run_scenario, generate_scenario(1, "medium"))
