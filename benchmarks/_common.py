"""Shared helpers for the per-table and per-figure benches."""

from __future__ import annotations

from typing import Dict, Set, Tuple

from repro.apps import get_app
from repro.core.model import InstType
from repro.core.pipeline import analyze_snapshots
from repro.eval.experiments import ExperimentResult
from repro.eval.figures import heartbeat_figure
from repro.eval.tables import app_sites_table, comparison_table, paper_sites_table
from repro.incprof.session import Session, SessionConfig

SiteSet = Set[Tuple[str, InstType]]


def collect_samples(app_name: str, scale: float = 1.0):
    """One paper-scale collection run (rank 0 snapshots)."""
    session = Session(get_app(app_name), SessionConfig(ranks=1, scale=scale))
    return session.run().samples(0)


def sites_of(result: ExperimentResult) -> SiteSet:
    return {(s.function, s.inst_type) for s in result.analysis.sites()}


def run_table_bench(
    benchmark,
    experiments: Dict[str, ExperimentResult],
    save_artifact,
    app_name: str,
    required_sites: SiteSet,
    artifact: str,
) -> ExperimentResult:
    """Regenerate a Table II-VI, assert the required sites, time analysis."""
    result = experiments[app_name]
    text = "\n\n".join(
        [
            app_sites_table(result).render(),
            paper_sites_table(app_name).render(),
            comparison_table(result).render(),
        ]
    )
    save_artifact(artifact, text)
    print()
    print(text)

    found = sites_of(result)
    missing = required_sites - found
    assert not missing, f"paper sites missing from reproduction: {missing}"

    samples = collect_samples(app_name)
    benchmark(analyze_snapshots, samples)
    return result


def run_figure_bench(
    benchmark,
    experiments: Dict[str, ExperimentResult],
    save_artifact,
    app_name: str,
    artifact: str,
):
    """Regenerate a Figure 2-6 and time the series extraction."""
    result = experiments[app_name]
    figure = heartbeat_figure(result)
    text = figure.render()
    save_artifact(artifact, text)
    print()
    print(text)
    benchmark(lambda: heartbeat_figure(result).discovered.summary())
    return figure
