"""Ablation: Algorithm 1's coverage threshold.

The paper uses 95% ("to skip outliers").  This bench sweeps the
threshold and reports how many sites get selected: a threshold of 1.0
chases outlier intervals with extra sites, lower thresholds prune them.
"""

import pytest

from benchmarks._common import collect_samples
from repro.core.instrumentation import select_sites
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.util.tables import Table

THRESHOLDS = (0.8, 0.9, 0.95, 1.0)
APPS = ("graph500", "minife", "miniamr")


def test_coverage_threshold_ablation(benchmark, save_artifact):
    table = Table(headers=["App"] + [f"{t:.0%}" for t in THRESHOLDS],
                  title="Ablation: total sites selected vs coverage threshold")
    per_app = {}
    bench_args = None
    for name in APPS:
        samples = collect_samples(name)
        counts = []
        for threshold in THRESHOLDS:
            analysis = analyze_snapshots(
                samples, AnalysisConfig(coverage_threshold=threshold)
            )
            counts.append(len(analysis.sites()))
            if name == "miniamr" and threshold == 0.95:
                bench_args = (analysis.interval_data, analysis.phase_model,
                              analysis.features)
        per_app[name] = dict(zip(THRESHOLDS, counts))
        table.add_row(name, *counts)

    text = table.render()
    save_artifact("ablation_coverage", text)
    print()
    print(text)

    for name in APPS:
        counts = per_app[name]
        # Site count is monotone in the threshold, and chasing 100%
        # coverage costs extra outlier sites somewhere.
        ordered = [counts[t] for t in THRESHOLDS]
        assert ordered == sorted(ordered)
    assert any(per_app[n][1.0] > per_app[n][0.95] for n in APPS)

    data, model, features = bench_args
    benchmark(select_sites, data, model, features, 0.95)
