"""Ablation: k-means vs DBSCAN.

The paper: "We have also experimented with other clustering algorithms
(e.g., DBSCAN) but also have not seen improvements ... the simple
distance-based clustering of k-means is applicable."
"""

import numpy as np
import pytest

from benchmarks._common import collect_samples
from repro.apps import paper_app_names
from repro.core.dbscan import NOISE, dbscan, suggest_eps
from repro.core.features import build_features
from repro.core.intervals import intervals_from_snapshots
from repro.core.kmeans import kmeans
from repro.util.tables import Table

PAPER_K = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}


def test_clustering_ablation(benchmark, save_artifact):
    table = Table(
        headers=["App", "paper k", "DBSCAN clusters", "DBSCAN noise %"],
        title="Ablation: DBSCAN on interval features",
    )
    deviations = 0
    bench_features = None
    for name in paper_app_names():
        samples = collect_samples(name)
        data = intervals_from_snapshots(samples).drop_inactive_functions()
        features = build_features(data)
        if name == "graph500":
            bench_features = features
        eps = suggest_eps(features, quantile=0.75)
        result = dbscan(features, eps=eps * 3, min_samples=4)
        noise_pct = 100.0 * (result.labels == NOISE).mean()
        table.add_row(name, PAPER_K[name], result.n_clusters, noise_pct)
        if result.n_clusters != PAPER_K[name]:
            deviations += 1

    text = table.render()
    save_artifact("ablation_clustering", text)
    print()
    print(text)

    # DBSCAN (with a generic eps heuristic) does not reproduce the paper's
    # phase counts across the board — k-means + elbow does.
    assert deviations >= 1

    benchmark(kmeans, bench_features, 4, 0)
