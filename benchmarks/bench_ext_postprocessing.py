"""Extension benches: the paper's proposed improvements, quantified.

Two future-work items from the paper, implemented in this repo:

- **phase merging** ("postprocessing to combine phases which have the
  same instrumentation sites", Section VI-A): LAMMPS's two compute
  phases collapse into one, Graph500's bfs phases stay distinguishable
  only through the body/loop designation;
- **call-graph lifting** ("extending the discovery analysis to use the
  call-graph structure", Section VI-B): the low-level discovered sites
  lift exactly to the authors' manual choices for MiniFE and Graph500.
"""

from repro.apps import get_app, paper_app_names
from repro.core.callgraph_lift import suggest_lifts
from repro.core.postprocess import merge_equivalent_phases
from repro.util.tables import Table


def test_phase_merging(benchmark, experiments, save_artifact):
    table = Table(headers=["App", "phases", "after merging", "merged groups"],
                  title="Extension: site-equivalence phase merging")
    merged_by_app = {}
    for name in paper_app_names():
        merged = merge_equivalent_phases(experiments[name].analysis)
        merged_by_app[name] = merged
        groups = [list(g.phase_ids) for g in merged.merged if g.was_merged]
        table.add_row(name, merged.n_original, merged.n_phases, str(groups or "-"))

    text = table.render()
    save_artifact("ext_phase_merging", text)
    print()
    print(text)

    # LAMMPS's compute phases merge (the paper's explicit observation).
    assert merged_by_app["lammps"].merges_applied() >= 1
    # MiniFE's five phases are genuinely distinct: nothing merges.
    assert merged_by_app["minife"].merges_applied() == 0

    benchmark(merge_equivalent_phases, experiments["lammps"].analysis)


def test_callgraph_lifting(benchmark, experiments, save_artifact):
    table = Table(headers=["App", "site", "lifted to", "dominance", "coverage"],
                  title="Extension: call-graph site lifting", float_fmt=".2f")
    lifts_by_app = {}
    for name in paper_app_names():
        suggestions = suggest_lifts(experiments[name].analysis)
        lifts_by_app[name] = {s.original.function: s.caller for s in suggestions}
        for s in suggestions:
            table.add_row(name, s.original.function, s.caller,
                          s.dominance, s.coverage)

    text = table.render()
    save_artifact("ext_callgraph_lifting", text)
    print()
    print(text)

    # The paper's two named cases are recovered exactly.
    assert lifts_by_app["minife"].get("sum_in_symm_elem_matrix") == "perform_element_loop"
    assert lifts_by_app["graph500"].get("make_one_edge") == "generate_kronecker_range"
    # ...and every lift target is one of the authors' manual sites.
    for name, lifts in lifts_by_app.items():
        manual = {s.function for s in get_app(name).manual_sites}
        assert set(lifts.values()) <= manual

    benchmark(suggest_lifts, experiments["minife"].analysis)
