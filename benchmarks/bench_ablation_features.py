"""Ablation: clustering features.

The paper: "We have experimented with including or using other profiling
data (number of calls, execution time of children, etc.) but have not
found these to improve the results, and sometimes to worsen them."
This bench compares feature sources by how well the resulting site sets
agree with the self-time baseline (and the paper's sites).
"""

import pytest

from benchmarks._common import collect_samples
from repro.apps import paper_app_names
from repro.core.features import FeatureConfig, build_features
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.eval.paperdata import paper_site_set
from repro.util.tables import Table

SOURCES = ("self_time", "self_plus_calls", "calls", "self_plus_children")
PAPER_K = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}


def jaccard(a, b):
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def test_feature_ablation(benchmark, save_artifact):
    table = Table(
        headers=["App"] + [f"{s} (k / site-agreement)" for s in SOURCES],
        title="Ablation: clustering features (agreement vs paper site set)",
        float_fmt=".2f",
    )
    agreement = {source: [] for source in SOURCES}
    sample_data = None
    for name in paper_app_names():
        samples = collect_samples(name)
        paper_sites = {(f, t.value) for f, t in paper_site_set(name)}
        cells = []
        for source in SOURCES:
            analysis = analyze_snapshots(
                samples, AnalysisConfig(feature=FeatureConfig(source=source))
            )
            found = {(s.function, s.inst_type.value) for s in analysis.sites()}
            score = jaccard(found, paper_sites)
            agreement[source].append(score)
            cells.append(f"{analysis.n_phases} / {score:.2f}")
            if source == "self_time" and name == "minife":
                sample_data = analysis.interval_data
        table.add_row(name, *cells)

    means = {s: sum(v) / len(v) for s, v in agreement.items()}
    text = table.render() + "\n\nmean agreement: " + ", ".join(
        f"{s}={m:.3f}" for s, m in means.items()
    )
    save_artifact("ablation_features", text)
    print()
    print(text)

    # The paper's conclusion: plain self-time is at least as good as any
    # alternative feature set.
    assert means["self_time"] >= max(means[s] for s in SOURCES if s != "self_time")

    benchmark(build_features, sample_data, FeatureConfig(source="self_plus_children"))
