"""Multi-rank consistency bench.

The paper analyzes only rank 0 because the applications are symmetric;
this bench quantifies that premise by analyzing *every* rank of
multi-rank runs and measuring agreement of phase counts and site sets.
"""

import pytest

from repro.apps import get_app
from repro.eval.rank_consistency import analyze_all_ranks
from repro.util.tables import Table

APPS = ("graph500", "miniamr", "gadget2")


def test_rank_consistency(benchmark, save_artifact):
    table = Table(
        headers=["App", "ranks", "modal k", "k agreement", "site Jaccard",
                 "runtime imbalance"],
        title="Multi-rank analysis consistency (the symmetric-parallel premise)",
        float_fmt=".2f",
    )
    results = {}
    for name in APPS:
        consistency = analyze_all_ranks(get_app(name), ranks=4)
        results[name] = consistency
        table.add_row(
            name,
            consistency.n_ranks,
            consistency.modal_phase_count,
            consistency.phase_count_agreement,
            consistency.mean_site_jaccard(),
            consistency.runtime_imbalance,
        )

    text = table.render()
    save_artifact("rank_consistency", text)
    print()
    print(text)

    for name, consistency in results.items():
        assert consistency.phase_count_agreement >= 0.75
        assert consistency.mean_site_jaccard() >= 0.5
        assert consistency.runtime_imbalance < 0.15

    benchmark(analyze_all_ranks, get_app("miniamr"), 2, 0.5)
