"""Performance benches: how the tooling itself scales.

The paper's pitch is *efficiency* — collection at ≤10 % overhead and an
analysis cheap enough to run casually.  These benches time the pipeline
stages at paper scale and check the analysis cost grows roughly linearly
in run length (interval count).
"""

import time

import pytest

from benchmarks._common import collect_samples
from repro.core.intervals import intervals_from_snapshots
from repro.core.kmeans import kmeans
from repro.core.kselect import silhouette_score, wcss_curve
from repro.core.pipeline import analyze_snapshots
from repro.gprof.gmon import dumps_gmon, loads_gmon
from repro.util.tables import Table


def test_interval_differencing_speed(benchmark):
    samples = collect_samples("minife")  # ~600 snapshots
    data = benchmark(intervals_from_snapshots, samples)
    assert data.n_intervals > 500


def test_gmon_serialization_speed(benchmark):
    samples = collect_samples("graph500")
    final = samples[-1]
    blob = dumps_gmon(final)

    def roundtrip():
        return loads_gmon(dumps_gmon(final))

    loaded = benchmark(roundtrip)
    assert loaded.hist == final.hist
    assert len(blob) < 64 * 1024  # one dump stays small (paper: low I/O)


def test_kmeans_speed_paper_scale(benchmark):
    samples = collect_samples("minife")
    data = intervals_from_snapshots(samples).drop_inactive_functions()
    result = benchmark(kmeans, data.self_time, 5, 0)
    assert result.k == 5


def test_silhouette_speed_paper_scale(benchmark):
    samples = collect_samples("minife")
    data = intervals_from_snapshots(samples).drop_inactive_functions()
    labels = kmeans(data.self_time, 5, 0).labels
    score = benchmark(silhouette_score, data.self_time, labels)
    assert -1.0 <= score <= 1.0


def test_ksweep_speed_paper_scale(benchmark):
    samples = collect_samples("minife")
    data = intervals_from_snapshots(samples).drop_inactive_functions()
    results = benchmark(wcss_curve, data.self_time, 8, 0)
    assert set(results) == set(range(1, 9))


def test_analysis_scales_linearly(benchmark, save_artifact):
    """End-to-end analysis time vs run length (interval count)."""
    rows = []
    timings = {}
    for scale in (0.25, 0.5, 1.0):
        samples = collect_samples("minife", scale=scale)
        start = time.perf_counter()
        analysis = analyze_snapshots(samples)
        elapsed = time.perf_counter() - start
        timings[scale] = (analysis.interval_data.n_intervals, elapsed)
        rows.append((scale, analysis.interval_data.n_intervals,
                     f"{elapsed * 1e3:.1f} ms"))

    table = Table(headers=["scale", "intervals", "analysis time"],
                  title="Analysis cost vs run length (MiniFE)")
    for row in rows:
        table.add_row(*row)
    text = table.render()
    save_artifact("perf_scaling", text)
    print()
    print(text)

    # Roughly linear: 4x the intervals should cost well under 16x time.
    n_small, t_small = timings[0.25]
    n_big, t_big = timings[1.0]
    assert n_big > 3 * n_small
    assert t_big < 16 * max(t_small, 1e-3)

    samples = collect_samples("minife", scale=0.5)
    benchmark(analyze_snapshots, samples)
