"""Ablation: representative-rank vs aggregated-profile analysis.

The paper analyzes rank 0 and keeps the other ranks for descriptive
statistics.  The natural alternative is gprof's own aggregation
(``gprof -s`` / gmon.sum): merge the per-rank snapshot series and
analyze the cluster-wide profile.  This bench compares the two routes.
"""

import pytest

from repro.apps import get_app
from repro.core.pipeline import analyze_snapshots
from repro.gprof.merge import merge_sample_series
from repro.incprof.session import Session, SessionConfig
from repro.util.tables import Table

APPS = ("graph500", "lammps", "gadget2")


def test_rank_aggregation_ablation(benchmark, save_artifact):
    table = Table(
        headers=["App", "rank0 k", "merged k", "rank0 top site", "merged top site"],
        title="Ablation: representative rank vs gmon.sum aggregation",
    )
    agreements = []
    bench_series = None
    for name in APPS:
        result = Session(get_app(name), SessionConfig(ranks=3)).run()
        rank0 = analyze_snapshots(result.samples(0))
        merged_series = merge_sample_series([r.samples for r in result.per_rank])
        merged = analyze_snapshots(merged_series)
        if name == "lammps":
            bench_series = [r.samples for r in result.per_rank]
        def dominant(analysis):
            shares = {}
            for site in analysis.sites():
                shares[site.function] = shares.get(site.function, 0.0) + site.app_pct
            return max(shares, key=shares.get)

        top0 = dominant(rank0)
        topm = dominant(merged)
        table.add_row(name, rank0.n_phases, merged.n_phases, top0, topm)
        agreements.append((abs(rank0.n_phases - merged.n_phases), top0 == topm))

    text = table.render()
    save_artifact("ablation_rank_aggregation", text)
    print()
    print(text)

    # The two routes agree on the dominant structure for symmetric apps
    # (phase count within one, same dominant site) — supporting the
    # paper's representative-rank shortcut.
    for k_delta, same_top in agreements:
        assert k_delta <= 1
        assert same_top

    benchmark(merge_sample_series, bench_series)
