"""Table VI: Gadget2 instrumented functions."""

import pytest

from benchmarks._common import run_table_bench
from repro.core.model import InstType


def test_table6_gadget2(benchmark, experiments, save_artifact):
    result = run_table_bench(
        benchmark, experiments, save_artifact, "gadget2",
        required_sites={
            ("force_treeevaluate_shortrange", InstType.BODY),
            ("pm_setup_nonperiodic_kernel", InstType.BODY),
            ("force_update_node_recursive", InstType.BODY),
        },
        artifact="table6_gadget2",
    )
    sites = result.analysis.sites()
    # All discovered sites are body-instrumented (Table VI).
    assert all(s.inst_type is InstType.BODY for s in sites)
    # The tree walk splits across two phases (paper phases 0 and 2) and
    # none of the four manual main-loop sites is discoverable.
    tree_phases = {s.phase_id for s in sites
                   if s.function == "force_treeevaluate_shortrange"}
    assert len(tree_phases) == 2
    discovered = {s.function for s in sites}
    assert "compute_accelerations" not in discovered
    shares = {}
    for s in sites:
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert shares["force_treeevaluate_shortrange"] == pytest.approx(69.6, abs=7.0)
    assert shares["pm_setup_nonperiodic_kernel"] == pytest.approx(28.6, abs=6.0)
