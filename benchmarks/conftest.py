"""Shared benchmark fixtures.

Every bench regenerates its table/figure from the same memoized
paper-scale experiments, times the interesting computation with
pytest-benchmark, and writes the rendered artifact (regenerated next to
the paper's published version) into ``benchmarks/_output/`` so the
reproduction can be inspected after a run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.apps import paper_app_names
from repro.eval.experiments import run_experiment

OUTPUT_DIR = Path(__file__).parent / "_output"


@pytest.fixture(scope="session")
def experiments():
    """Paper-scale experiment results for all five applications."""
    return {name: run_experiment(name) for name in paper_app_names()}


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    """Write a rendered table/figure to benchmarks/_output/<name>.txt."""

    def _save(name: str, text: str) -> Path:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return _save
