"""Performance-regression runner: stage timings with a trajectory file.

Times the four analysis stages (interval differencing, k-means at the
paper's typical k, the full k sweep, and end-to-end analysis) at paper
scale — MiniFE, ~600 intervals — and writes ``BENCH_perf.json`` at the
repo root so future PRs can compare against a recorded trajectory.

For an honest speedup figure on a shared/noisy box, the seed revision's
kernels are benchmarked *interleaved* with the current tree: the seed's
``src/`` is extracted read-only via ``git archive`` and both variants run
alternately as subprocesses, taking the per-stage minimum over rounds.
Cross-process clock drift then hits both variants equally.

Marked ``slow``: tier-1 (``pytest -q`` over ``tests/``) never runs this.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
#: The growth seed: the revision whose kernels are the baseline.
SEED_REV = "34b105b"
ROUNDS = 3

#: CI smoke mode: single-round, current-tree-only timings compared
#: against the committed ``BENCH_perf.json`` (>2x regression fails).
QUICK = os.environ.get("BENCH_PERF_QUICK") == "1"

#: Timing harness run in a subprocess with PYTHONPATH pointing at either
#: the seed's ``src`` or the current one.  Only touches APIs that exist
#: in both revisions.
_TIMER_SCRIPT = r"""
import json, sys, time

from repro.apps import get_app
from repro.incprof.session import Session, SessionConfig
from repro.core.intervals import intervals_from_snapshots
from repro.core.kmeans import kmeans
from repro.core.kselect import silhouette_score, wcss_curve
from repro.core.pipeline import analyze_snapshots

samples = Session(get_app("minife"), SessionConfig(ranks=1)).run().samples(0)
data = intervals_from_snapshots(samples).drop_inactive_functions()
features = data.self_time
k5 = kmeans(features, 5, 0)


def best_ms(fn, repeat):
    times = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times) * 1e3


out = {
    "n_intervals": data.n_intervals,
    "differencing": best_ms(lambda: intervals_from_snapshots(samples), 5),
    "kmeans": best_ms(lambda: kmeans(features, 5, 0), 5),
    "silhouette": best_ms(lambda: silhouette_score(features, k5.labels), 5),
    "ksweep": best_ms(lambda: wcss_curve(features, kmax=8, seed=0), 3),
    "end_to_end": best_ms(lambda: analyze_snapshots(samples), 3),
}
print(json.dumps(out))
"""

STAGES = ("differencing", "kmeans", "silhouette", "ksweep", "end_to_end")


def _run_timer(src_dir: Path) -> dict:
    env = dict(os.environ, PYTHONPATH=str(src_dir))
    proc = subprocess.run(
        [sys.executable, "-c", _TIMER_SCRIPT],
        env=env, capture_output=True, text=True, check=True,
        cwd=str(REPO_ROOT),
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _extract_seed_src(dest: Path) -> Path:
    """Seed revision's ``src/`` via ``git archive`` (read-only on .git)."""
    archive = subprocess.run(
        ["git", "-C", str(REPO_ROOT), "archive", SEED_REV, "src"],
        capture_output=True, check=True,
    )
    tar = dest / "seed.tar"
    tar.write_bytes(archive.stdout)
    subprocess.run(["tar", "-xf", str(tar), "-C", str(dest)], check=True)
    return dest / "src"


def _merge_min(rounds: list) -> dict:
    return {stage: min(r[stage] for r in rounds) for stage in STAGES}


def _merge_into_bench_json(updates: dict) -> dict:
    """Fold one benchmark's record into ``BENCH_perf.json``.

    Each benchmark owns its top-level keys; merging (rather than
    overwriting the file) lets the stage trajectory and the streaming
    benchmark update independently.
    """
    path = REPO_ROOT / "BENCH_perf.json"
    record = json.loads(path.read_text()) if path.exists() else {}
    record.update(updates)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return record


@pytest.mark.slow
def test_perf_regression_trajectory():
    with tempfile.TemporaryDirectory(prefix="incprof-seed-") as tmp:
        try:
            seed_src = _extract_seed_src(Path(tmp))
        except (subprocess.CalledProcessError, OSError):
            seed_src = None  # shallow clone or missing rev: new-only record

        new_rounds, seed_rounds = [], []
        for _ in range(ROUNDS):
            if seed_src is not None:
                seed_rounds.append(_run_timer(seed_src))
            new_rounds.append(_run_timer(REPO_ROOT / "src"))

    new_ms = _merge_min(new_rounds)
    record = {
        "app": "minife",
        "scale": 1.0,
        "n_intervals": new_rounds[0]["n_intervals"],
        "unit": "ms",
        "method": (f"min over {ROUNDS} interleaved subprocess rounds; "
                   f"seed baseline from git archive {SEED_REV}"),
        "generated_unix": int(time.time()),
        "stages": new_ms,
    }
    if seed_rounds:
        seed_ms = _merge_min(seed_rounds)
        record["seed_stages"] = seed_ms
        record["speedup"] = {stage: round(seed_ms[stage] / new_ms[stage], 2)
                             for stage in STAGES}

    record = _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    assert record["n_intervals"] > 500  # paper scale
    if seed_rounds:
        # Acceptance: the vectorized kernels buy >=3x on the hot stages.
        for stage in ("kmeans", "silhouette", "end_to_end"):
            assert record["speedup"][stage] >= 3.0, (stage, record["speedup"])


@pytest.mark.slow
def test_streaming_incremental_speedup():
    """The streaming engine's O(1)-per-snapshot claim, measured.

    Before the incremental engine, "live" analysis meant re-running
    ``analyze_snapshots`` on the whole prefix after every dump —
    O(n) differencing plus a full re-cluster each time, O(n^2) overall.
    The engine ingests each snapshot once (delta against the previous
    dump only, amortized-O(1) matrix append, constant-size classify).
    This benchmark times both workflows over the same 100+ interval
    stream and records the speedup; 10x is the acceptance floor, and
    the per-snapshot cost of the second half of the stream must stay
    flat relative to the first (the actual O(1) evidence).
    """
    from repro.apps import get_app
    from repro.core.incremental import IncrementalAnalyzer
    from repro.core.pipeline import analyze_snapshots
    from repro.incprof.session import Session, SessionConfig

    samples = Session(get_app("synthetic"),
                      SessionConfig(ranks=1)).run().samples(0)
    n = len(samples)
    assert n >= 100  # the claim is about sustained streams

    def time_streaming() -> tuple:
        engine = IncrementalAnalyzer(track=True)
        t0 = time.perf_counter()
        for snapshot in samples[:n // 2]:
            engine.observe(snapshot)
        t_half = time.perf_counter()
        for snapshot in samples[n // 2:]:
            engine.observe(snapshot)
        t1 = time.perf_counter()
        return (t1 - t0) * 1e3, (t_half - t0) * 1e3, (t1 - t_half) * 1e3

    def time_batch_per_snapshot() -> float:
        t0 = time.perf_counter()
        for i in range(2, n + 1):
            analyze_snapshots(samples[:i])
        return (time.perf_counter() - t0) * 1e3

    rounds = 1 if QUICK else 3
    stream_runs = [time_streaming() for _ in range(rounds)]
    stream_ms, first_half_ms, second_half_ms = min(stream_runs)
    batch_ms = min(time_batch_per_snapshot() for _ in range(rounds))

    speedup = batch_ms / stream_ms
    record = {
        "streaming": {
            "app": "synthetic",
            "n_intervals": n,
            "unit": "ms",
            "streaming_total": round(stream_ms, 3),
            "per_snapshot_us": round(stream_ms * 1e3 / n, 1),
            "batch_per_snapshot_total": round(batch_ms, 3),
            "speedup": round(speedup, 1),
            "half_split": [round(first_half_ms, 3),
                           round(second_half_ms, 3)],
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    # acceptance: 10x+ over re-analyzing the prefix per dump...
    assert speedup >= 10.0, f"streaming speedup only {speedup:.1f}x"
    # ...and flat per-snapshot cost (second half classifies against the
    # same fixed-size model; allow slack for refits landing there)
    assert second_half_ms <= 3.0 * max(first_half_ms, 1.0), \
        (first_half_ms, second_half_ms)


@pytest.mark.slow
def test_wire_throughput():
    """The wire-path speedup: binary v2 + burst-pipelined submit, measured.

    The same pre-serialized snapshot stream is replayed against live
    ``incprofd`` daemons twice per round — once forced to protocol v1
    with the classic one-RTT-per-interval submit, once letting the hello
    negotiate binary v2 with the burst-pipelined window.  Each lane gets
    its own daemon subprocess (sharing one interpreter would let the
    server's GIL slices distort the client's clock), spawned once and
    reused; rounds are interleaved after one warmup replay per lane so
    machine noise hits adjacent lane runs about equally, and the
    headline speedup is the *median of per-round ratios* — pairing each
    v1 run with the v2 run beside it cancels drift that best-of-lane
    comparisons (which can pair a lucky v1 round against an unlucky v2
    one, or vice versa) do not.  3x submissions/sec is the full-mode
    acceptance floor, at equal correctness: every replay must drain
    cleanly, have every interval accepted, and produce the identical
    classification timeline.
    """
    import gc
    import socket

    from repro.api import save_model
    from repro.core.online import OnlinePhaseTracker
    from repro.core.pipeline import AnalysisConfig, analyze_snapshots
    from repro.gprof.gmon import GmonBlob, dumps_gmon
    from repro.service.client import (PIPELINE_WINDOW, PhaseClient,
                                      SyntheticLoadGenerator,
                                      publish_samples)
    from repro.service.protocol import (Endpoint, SnapshotMsg,
                                        encode_message)
    from repro.util.errors import ReproError

    # A wider function set than the chaos tests use: frame cost, which
    # is what this stage measures, scales with the function table.
    gen = SyntheticLoadGenerator(
        functions=tuple(f"func_{i:02d}" for i in range(96)))
    template = OnlinePhaseTracker.from_analysis(
        analyze_snapshots(gen.stream(0, 24), AnalysisConfig(kmax=4)))
    n = 60 if QUICK else 400
    # Publishers hand the client pre-serialized dumps (GmonBlob): the
    # v2 lane forwards those bytes zero-copy, the v1 lane re-encodes —
    # exactly the production split this stage exists to measure.
    raw = [dumps_gmon(s) for s in gen.stream(1, n)]
    rounds = 1 if QUICK else 5

    def spawn_daemon(model_path: str):
        sk = socket.socket()
        sk.bind(("127.0.0.1", 0))
        port = sk.getsockname()[1]
        sk.close()
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--model", model_path,
             "--port", str(port), "--workers", "1", "--log-level", "error"],
            env=env, cwd=str(REPO_ROOT),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        endpoint = Endpoint.tcp("127.0.0.1", port)
        deadline = time.time() + 30
        while time.time() < deadline:
            try:
                with PhaseClient(endpoint) as probe:
                    probe.ping()
                return proc, endpoint
            except (ReproError, OSError):
                time.sleep(0.1)
        proc.kill()
        proc.wait()
        raise RuntimeError("wire bench daemon did not come up in 30s")

    def replay(endpoint, stream_id: str, protocols: tuple,
               pipeline) -> tuple:
        samples = [GmonBlob(b) for b in raw]
        gc.disable()
        try:
            t0 = time.perf_counter()
            report = publish_samples(endpoint, stream_id, samples,
                                     protocols=protocols,
                                     pipeline=pipeline, trace=False)
            elapsed = time.perf_counter() - t0
        finally:
            gc.enable()
        assert report.error == "" and report.drained, report.error
        assert report.accepted == n and report.rejected == 0
        return n / elapsed, report.phase_sequence

    def lane_p99_ms(endpoint) -> float:
        with PhaseClient(endpoint) as probe:
            return probe.stats().data["classify_latency"]["p99"] * 1e3

    with tempfile.TemporaryDirectory(prefix="incprof-wire-") as tmp:
        model_path = os.path.join(tmp, "wire-model.json")
        save_model(template, model_path)
        daemons = [spawn_daemon(model_path) for _ in range(2)]
        (v1_proc, v1_ep), (v2_proc, v2_ep) = daemons
        try:
            replay(v1_ep, "wire-warm-v1", (1,), 1)
            replay(v2_ep, "wire-warm-v2", (1, 2), None)
            v1_rates, v2_rates = [], []
            timelines = set()
            for r in range(rounds):
                rate, timeline = replay(v1_ep, f"wire-v1-{r}", (1,), 1)
                v1_rates.append(rate)
                timelines.add(tuple(timeline))
                rate, timeline = replay(v2_ep, f"wire-v2-{r}", (1, 2), None)
                v2_rates.append(rate)
                timelines.add(tuple(timeline))
            v1_p99 = lane_p99_ms(v1_ep)
            v2_p99 = lane_p99_ms(v2_ep)
        finally:
            for proc, _ep in daemons:
                proc.kill()
                proc.wait()
    # Equal correctness: every replay, either codec, classified the
    # stream identically.
    assert len(timelines) == 1

    ratios = sorted(v2 / v1 for v1, v2 in zip(v1_rates, v2_rates))
    speedup = ratios[len(ratios) // 2]
    probe_msg = SnapshotMsg(stream_id="wire-size", seq=n - 1,
                            gmon=GmonBlob(raw[-1]))
    record = {
        "wire": {
            "app": "synthetic",
            "n_intervals": n,
            "functions": len(gen.functions),
            "pipeline_window": PIPELINE_WINDOW,
            "v1_frame_bytes": len(encode_message(probe_msg, version=1)),
            "v2_frame_bytes": len(encode_message(probe_msg, version=2)),
            "v1_submissions_per_sec": round(max(v1_rates), 1),
            "v2_submissions_per_sec": round(max(v2_rates), 1),
            "per_round_speedups": [round(r, 2) for r in ratios],
            "speedup": round(speedup, 2),
            "p99_classify_ms": {"v1": round(v1_p99, 3),
                                "v2": round(v2_p99, 3)},
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    # Acceptance: >=3x submissions/sec for binary-v2 batched over
    # JSON-v1 single-shot (the quick smoke keeps a slacker floor — a
    # loaded CI runner's scheduling jitter lands on whichever lane is
    # running, and one short round cannot average it away).
    floor = 1.5 if QUICK else 3.0
    assert speedup >= floor, f"wire speedup only {speedup:.2f}x"


@pytest.mark.slow
def test_storage_throughput():
    """The tiered segment store's hot paths: append, replay, compact.

    Appends a cumulative synthetic stream into a fresh ``SegmentStore``,
    replays it through the streaming engine via the time-travel API, and
    compacts the raw tier down to interval vectors, recording
    appends/sec, replay intervals/sec, and the on-disk compaction ratio
    in ``BENCH_perf.json``.  The floors are deliberately loose (4x+
    headroom on a dev box) — they exist to catch an accidental
    O(n)-flush-per-append or a replay path that re-opens segments per
    interval, not to benchmark the machine.
    """
    import random
    import shutil

    from repro.gprof.gmon import GmonData
    from repro.store.segments import SegmentStore

    n = 400 if QUICK else 4000
    funcs = 48
    rng = random.Random(5)
    names = [f"bench.mod_{j // 8}.func_{j:03d}" for j in range(funcs)]
    rates = [[rng.randint(8, 60) if j % 3 == p else 0
              for j in range(funcs)] for p in range(3)]
    cum = [0] * funcs
    series = []
    for i in range(n):
        phase = (i // 25) % 3
        for j in range(funcs):
            if rates[phase][j]:
                cum[j] += max(0, rates[phase][j] + rng.randint(-2, 2))
        snap = GmonData(rank=0, timestamp=float(i + 1))
        for j, name in enumerate(names):
            if cum[j]:
                snap.add_ticks(name, cum[j])
        series.append(snap)

    with tempfile.TemporaryDirectory(prefix="incprof-store-") as tmp:
        root = Path(tmp) / "store"
        store = SegmentStore(root, segment_intervals=256)
        t0 = time.perf_counter()
        for i, snap in enumerate(series):
            store.append("bench", i, snap)
        store.flush()
        append_s = time.perf_counter() - t0
        appends_per_sec = n / append_s

        result = store.replay("bench", warmup=8)
        assert result.n_intervals == n

        du = lambda: sum(p.stat().st_size for p in root.rglob("*")
                         if p.is_file())
        bytes_before = du()
        t0 = time.perf_counter()
        store.compact("bench", raw_keep=0)
        compact_s = time.perf_counter() - t0
        bytes_after = du()

        # Replay must survive (and not slow down through) the vector tier.
        vec_result = store.replay("bench", warmup=8)
        assert vec_result.n_intervals == n
        shutil.rmtree(root, ignore_errors=True)

    record = {
        "storage": {
            "n_intervals": n,
            "functions": funcs,
            "appends_per_sec": round(appends_per_sec, 1),
            "replay_intervals_per_sec": round(
                result.intervals_per_second, 1),
            "replay_intervals_per_sec_vector": round(
                vec_result.intervals_per_second, 1),
            "compact_seconds": round(compact_s, 3),
            "bytes_raw": bytes_before,
            "bytes_compacted": bytes_after,
            "compaction_ratio": round(bytes_before / max(bytes_after, 1), 2),
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    # CI floors: far under healthy numbers, far over pathological ones.
    assert appends_per_sec >= 500, f"append only {appends_per_sec:.0f}/s"
    assert result.intervals_per_second >= 300, \
        f"replay only {result.intervals_per_second:.0f} intervals/s"
    assert bytes_after < bytes_before  # compaction must shrink the store


@pytest.mark.slow
def test_analytics_throughput():
    """Fleet analytics hot paths: signature extraction and clustering.

    Builds a synthetic fleet of phase sequences across a few behaviour
    families, takes ``PhaseSignature``s, and runs the full
    ``analyze_signatures`` cohort/anomaly/drift pass, recording
    signatures/sec and cluster-pass seconds in ``BENCH_perf.json``.
    Floors are loose sanity bounds — signature extraction is O(n) in
    intervals and the cluster pass is a small k-means sweep; the guard
    catches an accidental O(n²) transition build or a per-pass
    re-vectorization blowup, not machine speed.
    """
    import random

    from repro.fleet.analytics import PhaseSignature, analyze_signatures

    n_streams = 24 if QUICK else 96
    n_intervals = 400 if QUICK else 2000
    rng = random.Random(7)
    families = [
        lambda i: 0,                      # steady
        lambda i: i % 2,                  # alternating
        lambda i: (i // 50) % 3,          # slow rotation
        lambda i: rng.randrange(4),       # noisy
    ]
    sequences = [
        [families[s % len(families)](i) for i in range(n_intervals)]
        for s in range(n_streams)
    ]

    t0 = time.perf_counter()
    signatures = [
        PhaseSignature.from_phase_sequence(f"bench-{s}", seq)
        for s, seq in enumerate(sequences)
    ]
    signature_s = time.perf_counter() - t0
    signatures_per_sec = n_streams / signature_s

    t0 = time.perf_counter()
    report = analyze_signatures(signatures, include_signatures=False)
    cluster_s = time.perf_counter() - t0
    assert report["n_streams"] == n_streams
    assert report["n_cohorts"] >= 2  # the families must not collapse

    record = {
        "analytics": {
            "n_streams": n_streams,
            "n_intervals": n_intervals,
            "signatures_per_sec": round(signatures_per_sec, 1),
            "signature_seconds": round(signature_s, 4),
            "cluster_pass_seconds": round(cluster_s, 4),
            "n_cohorts": report["n_cohorts"],
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    assert signatures_per_sec >= 20, \
        f"signature extraction only {signatures_per_sec:.0f}/s"
    assert cluster_s < 30.0, f"cluster pass took {cluster_s:.1f}s"


@pytest.mark.slow
def test_scenario_throughput():
    """Scenario engine hot paths: generation and the end-to-end sweep.

    Generation is pure spec construction (SeedSequence draws, no
    engine) and must stay effectively free — thousands per second — so
    populations can be materialized inline anywhere.  The sweep runs
    each scenario through simulation + full analysis; its throughput
    bounds how large an accuracy distribution CI can afford.  Accuracy
    itself is gated here too: the quick sweep doubles as the
    scenario-sweep smoke floor (easy-tier median agreement).
    """
    from repro.eval.scenarios import sweep_scenarios

    n = 9 if QUICK else 30
    report = sweep_scenarios(n=n, seed=0)

    record = {
        "scenario_throughput": {
            "n_scenarios": n,
            "generation_per_sec": report["generation_per_sec"],
            "scenarios_per_sec": report["scenarios_per_sec"],
            "generation_seconds": report["generation_seconds"],
            "sweep_seconds": report["sweep_seconds"],
            "easy_median_agreement":
                report["tiers"]["easy"]["median_agreement"],
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    # Floors are loose sanity bounds, not machine-speed assertions.
    assert report["generation_per_sec"] >= 50, \
        f"generation only {report['generation_per_sec']:.0f}/s"
    assert report["scenarios_per_sec"] >= 2, \
        f"sweep only {report['scenarios_per_sec']:.1f} scenarios/s"
    assert report["tiers"]["easy"]["median_agreement"] >= 0.9


@pytest.mark.slow
@pytest.mark.skipif(not QUICK,
                    reason="CI smoke only: set BENCH_PERF_QUICK=1")
def test_quick_bench_guard():
    """CI quick-bench: current-tree stage timings vs the recorded file.

    One subprocess round, no seed interleave — catches gross (>2x)
    regressions in seconds.  The 2x tolerance absorbs runner-speed
    variance between the box that recorded ``BENCH_perf.json`` and the
    CI machine; the full interleaved trajectory stays a local tool.
    """
    baseline = json.loads((REPO_ROOT / "BENCH_perf.json").read_text())
    stages = baseline["stages"]
    now = _run_timer(REPO_ROOT / "src")
    regressions = {
        stage: {"now_ms": round(now[stage], 2),
                "recorded_ms": round(stages[stage], 2)}
        for stage in STAGES if now[stage] > 2.0 * stages[stage]
    }
    assert not regressions, \
        f"stage(s) regressed >2x vs BENCH_perf.json: {regressions}"
