"""Seed-stability bench: error bars around the fixed-seed tables.

EXPERIMENTS.md reports one run per app (as the paper does); this bench
sweeps seeds and reports how often the paper's phase count and core
sites are recovered — the reproduction's honest stability statement.
"""

import pytest

from repro.eval.stability import stability_sweep
from repro.util.tables import Table

PAPER_K = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}
SEEDS = tuple(range(101, 109))

#: Sites that must be discovered in the vast majority of runs.
CORE_FUNCTIONS = {
    "graph500": {"validate_bfs_result", "make_one_edge"},
    "minife": {"cg_solve", "sum_in_symm_elem_matrix", "init_matrix",
               "impose_dirichlet"},
    "miniamr": {"check_sum"},
    "lammps": {"PairLJCut::compute", "NPairHalfBinNewtonTri::build"},
    "gadget2": {"force_treeevaluate_shortrange", "pm_setup_nonperiodic_kernel"},
}


def test_stability_sweep(benchmark, save_artifact):
    table = Table(
        headers=["App", "paper k", "k histogram", "k stability", "core sites found"],
        title=f"Detection stability over {len(SEEDS)} seeds",
        float_fmt=".2f",
    )
    sweeps = {}
    for name, paper_k in PAPER_K.items():
        sweep = stability_sweep(name, seeds=SEEDS)
        sweeps[name] = sweep
        found_functions = {f for f, _t in sweep.core_sites(min_frequency=0.8)}
        core_found = CORE_FUNCTIONS[name] <= found_functions
        table.add_row(
            name,
            paper_k,
            str(sweep.phase_count_histogram()),
            sweep.phase_count_stability(),
            "yes" if core_found else f"missing {CORE_FUNCTIONS[name] - found_functions}",
        )

    text = table.render()
    save_artifact("stability_sweep", text)
    print()
    print(text)

    for name, paper_k in PAPER_K.items():
        sweep = sweeps[name]
        assert sweep.modal_phase_count() == paper_k
        assert sweep.phase_count_stability() >= 0.6
        found = {f for f, _t in sweep.core_sites(min_frequency=0.8)}
        assert CORE_FUNCTIONS[name] <= found, (name, found)

    benchmark(stability_sweep, "synthetic", (1, 2), 0.3)
