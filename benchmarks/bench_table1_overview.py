"""Table I: experimental overview — setup, overheads, phase counts.

Regenerates the paper's Table I for all five applications and times the
overhead-measurement methodology (three instrumented builds of one app).
"""

from repro.apps import get_app
from repro.eval.overhead import measure_overheads
from repro.eval.tables import table1, table1_comparison


def test_table1(benchmark, experiments, save_artifact):
    regenerated = table1(experiments).render()
    comparison = table1_comparison(experiments).render()
    save_artifact("table1_overview", regenerated + "\n\n" + comparison)
    print()
    print(regenerated)
    print()
    print(comparison)

    # Phase counts are the table's headline claim.
    expected = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}
    for name, k in expected.items():
        assert experiments[name].n_phases == k

    # Time the measurement methodology itself (three builds of MiniAMR).
    app = get_app("miniamr")
    benchmark(measure_overheads, app, 0.25)
