"""Ablation: sampling-timer jitter.

DESIGN.md calls out the modeled SIGPROF jitter as a design choice: real
profilers never produce the exact interval-boundary ties an idealized
sampler does.  This bench sweeps the jitter magnitude and reports how
phase counts and site sets respond — detection should be *stable* across
realistic jitter levels (robustness of the paper's method to sampling
noise) and only degrade at absurd magnitudes.
"""

import pytest

from repro.apps import get_app
from repro.core.pipeline import analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.util.tables import Table

JITTERS = (0.0, 0.06, 0.12, 0.25, 1.0)
PAPER_K = {"graph500": 4, "miniamr": 2}


def analyze_with_jitter(app_name: str, jitter: float):
    session = Session(get_app(app_name),
                      SessionConfig(ranks=1, sampling_jitter=jitter))
    return analyze_snapshots(session.run().samples(0))


def test_jitter_ablation(benchmark, save_artifact):
    table = Table(
        headers=["App"] + [f"sigma={j}" for j in JITTERS],
        title="Ablation: phases detected vs sampling-timer jitter",
    )
    counts = {}
    for name in PAPER_K:
        row = []
        for jitter in JITTERS:
            analysis = analyze_with_jitter(name, jitter)
            row.append(analysis.n_phases)
        counts[name] = dict(zip(JITTERS, row))
        table.add_row(name, *row)

    text = table.render()
    save_artifact("ablation_jitter", text)
    print()
    print(text)

    # Detection is stable across realistic SIGPROF jitter (up to ~0.12);
    # extreme noise (sigma=1.0: +/-10 ticks per 100) eventually splinters
    # the weakest-margin clusters (MiniAMR's deviation phase).
    for name, paper_k in PAPER_K.items():
        for jitter in (0.0, 0.06, 0.12):
            assert counts[name][jitter] == paper_k, (name, jitter)
    assert counts["miniamr"][1.0] != PAPER_K["miniamr"]

    benchmark(analyze_with_jitter, "miniamr", 0.12)
