"""Ablation: k-selection method (elbow vs chord vs silhouette).

The paper: "Both the elbow and silhouette methods ... are established
quantitative methods for selecting k."  This bench runs all three
selectors over every app's interval data and reports the chosen k next
to the paper's phase count.
"""

import pytest

from benchmarks._common import collect_samples
from repro.apps import paper_app_names
from repro.core.kselect import choose_k
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.util.tables import Table

PAPER_K = {"graph500": 4, "minife": 5, "miniamr": 2, "lammps": 4, "gadget2": 3}


def test_kselect_ablation(benchmark, save_artifact):
    table = Table(headers=["App", "paper k", "elbow", "chord", "silhouette"],
                  title="Ablation: k-selection method")
    chosen = {}
    features_by_app = {}
    for name in paper_app_names():
        samples = collect_samples(name)
        row = {"paper": PAPER_K[name]}
        for method in ("elbow", "chord", "silhouette"):
            analysis = analyze_snapshots(
                samples, AnalysisConfig(kselect_method=method)
            )
            row[method] = analysis.n_phases
            if method == "elbow":
                features_by_app[name] = analysis.features
        chosen[name] = row
        table.add_row(name, row["paper"], row["elbow"], row["chord"],
                      row["silhouette"])

    text = table.render()
    save_artifact("ablation_kselect", text)
    print()
    print(text)

    # The shipped elbow reproduces every paper phase count; the
    # alternatives don't (which is why calibration matters).
    for name in paper_app_names():
        assert chosen[name]["elbow"] == PAPER_K[name]
    disagreements = sum(
        chosen[n]["chord"] != PAPER_K[n] or chosen[n]["silhouette"] != PAPER_K[n]
        for n in paper_app_names()
    )
    assert disagreements >= 1

    benchmark(choose_k, features_by_app["miniamr"], 8, "elbow", 0)
