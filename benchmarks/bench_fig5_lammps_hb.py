"""Figure 5: LAMMPS phase heartbeats (discovered sites)."""

from benchmarks._common import run_figure_bench


def test_fig5_lammps(benchmark, experiments, save_artifact):
    figure = run_figure_bench(benchmark, experiments, save_artifact,
                              "lammps", "fig5_lammps_heartbeats")
    result = experiments["lammps"]
    series = figure.discovered
    labels = {b.hb_id: b.function for b in result.discovered_bindings}

    # Velocity::create only at the beginning (initialization).
    vel = next(i for i, f in labels.items() if f == "Velocity::create")
    assert series.activity_span(vel)[1] < series.n_intervals * 0.1

    # The run is dominated by compute with short rebuild interludes.
    compute_ids = [i for i, f in labels.items() if f == "PairLJCut::compute"]
    build_ids = [i for i, f in labels.items()
                 if f == "NPairHalfBinNewtonTri::build"]
    compute_active = sum(len(series.active_intervals(i)) for i in compute_ids)
    build_active = sum(len(series.active_intervals(i)) for i in build_ids)
    assert compute_active > 4 * build_active
