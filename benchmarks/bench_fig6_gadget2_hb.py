"""Figure 6: Gadget2 phase heartbeats (discovered + manual)."""

from benchmarks._common import run_figure_bench


def test_fig6_gadget2(benchmark, experiments, save_artifact):
    figure = run_figure_bench(benchmark, experiments, save_artifact,
                              "gadget2", "fig6_gadget2_heartbeats")
    result = experiments["gadget2"]

    # Manual sites: the four main-loop functions essentially overlap —
    # each is called once per timestep, so their rates agree.
    assert figure.manual is not None
    ids = figure.manual.hb_ids()
    assert len(ids) == 4
    rates = [figure.manual.mean_rate(i) for i in ids]
    assert max(rates) <= 2.0 * min(rates)

    # Discovered: the tree walk fires throughout; PM epochs are periodic
    # bursts covering a minority of intervals.
    labels = {b.hb_id: b.function for b in result.discovered_bindings}
    tree = next(i for i, f in labels.items()
                if f == "force_treeevaluate_shortrange")
    pm = next(i for i, f in labels.items()
              if f == "pm_setup_nonperiodic_kernel")
    series = figure.discovered
    n = series.n_intervals
    assert len(series.active_intervals(tree)) > 0.6 * n
    pm_frac = len(series.active_intervals(pm)) / n
    assert 0.15 < pm_frac < 0.45
