"""Figure 3: MiniFE phase heartbeats (discovered sites only)."""

from benchmarks._common import run_figure_bench


def test_fig3_minife(benchmark, experiments, save_artifact):
    figure = run_figure_bench(benchmark, experiments, save_artifact,
                              "minife", "fig3_minife_heartbeats")
    assert figure.manual is None  # the paper shows only discovered sites
    result = experiments["minife"]
    series = figure.discovered
    labels = {b.hb_id: b.function for b in result.discovered_bindings}

    # cg_solve dominates the tail of the run; the preparation sites
    # (init/assembly/dirichlet) are active before it, in sequence.
    cg = next(i for i, f in labels.items() if f == "cg_solve")
    init = next(i for i, f in labels.items() if f == "init_matrix")
    assembly = next(i for i, f in labels.items() if f == "sum_in_symm_elem_matrix")
    assert series.activity_span(init)[0] < series.activity_span(assembly)[0]
    assert series.activity_span(assembly)[1] < series.activity_span(cg)[1]
    assert series.activity_span(cg)[1] >= series.n_intervals - 2
