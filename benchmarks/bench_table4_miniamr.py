"""Table IV: MiniAMR instrumented functions."""

import pytest

from benchmarks._common import run_table_bench
from repro.core.model import InstType


def test_table4_miniamr(benchmark, experiments, save_artifact):
    result = run_table_bench(
        benchmark, experiments, save_artifact, "miniamr",
        required_sites={
            ("check_sum", InstType.BODY),
            ("allocate", InstType.LOOP),
            ("pack_block", InstType.BODY),
            ("unpack_block", InstType.BODY),
        },
        artifact="table4_miniamr",
    )
    # check_sum alone covers almost 90% of the run (paper: 89.1%).
    top = max(result.analysis.sites(), key=lambda s: s.app_pct)
    assert top.function == "check_sum"
    assert top.app_pct == pytest.approx(89.1, abs=7.0)
    # Only two phases: the normal computation and the deviations.
    assert result.n_phases == 2
