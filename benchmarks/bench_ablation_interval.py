"""Ablation: collection-interval length.

The paper uses 1-second intervals and notes (Gadget2, Section VI-E) that
fast phases are invisible at that granularity.  This bench sweeps the
IncProf interval and reports how phase counts respond — including the
Gadget2 sensitivity the paper calls out.
"""

import pytest

from repro.apps import get_app
from repro.core.pipeline import analyze_snapshots
from repro.incprof.session import Session, SessionConfig
from repro.util.tables import Table

INTERVALS = (0.5, 1.0, 2.0, 4.0)
APPS = ("graph500", "miniamr", "gadget2")


def phases_at(app_name: str, interval: float) -> int:
    session = Session(get_app(app_name),
                      SessionConfig(ranks=1, interval=interval))
    samples = session.run().samples(0)
    return analyze_snapshots(samples).n_phases


def test_interval_ablation(benchmark, save_artifact):
    table = Table(headers=["App"] + [f"{i}s" for i in INTERVALS],
                  title="Ablation: phases detected vs collection interval")
    counts = {}
    for name in APPS:
        row = [phases_at(name, interval) for interval in INTERVALS]
        counts[name] = dict(zip(INTERVALS, row))
        table.add_row(name, *row)

    text = table.render()
    save_artifact("ablation_interval", text)
    print()
    print(text)

    # 1 s reproduces the paper; very coarse intervals blur phase structure
    # for at least one app (fewer intervals, more mixing per interval).
    assert counts["graph500"][1.0] == 4
    assert counts["miniamr"][1.0] == 2
    assert counts["gadget2"][1.0] == 3
    assert any(counts[name][4.0] != counts[name][1.0] for name in APPS)

    benchmark(phases_at, "miniamr", 1.0)
