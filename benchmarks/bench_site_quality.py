"""Site-quality bench: discovered vs manual instrumentation, quantified.

The paper's per-app verdicts, turned into purity/coverage numbers:

- Graph500: "arguably, the discovered sites better capture the
  behavior" — and the manual sites' >1 s heartbeats leave gaps;
- MiniFE: discovered and manual heartbeats are "nearly identical";
- LAMMPS/Gadget2: the manual sites overlap or fall silent for long
  stretches, so their signatures identify phases poorly.
"""

import pytest

from repro.apps import paper_app_names
from repro.eval.site_quality import compare_site_sets, quality_table, score_series


def test_site_quality(benchmark, experiments, save_artifact):
    table = quality_table(experiments)
    text = table.render()
    save_artifact("site_quality", text)
    print()
    print(text)

    scores = {name: compare_site_sets(result)
              for name, result in experiments.items()}

    # Discovered instrumentation is never meaningfully worse...
    for name, (discovered, manual) in scores.items():
        assert discovered.lift >= manual.lift - 0.05, name
        assert discovered.coverage >= manual.coverage - 0.02, name

    # ...and strictly better where the paper says so.
    for name in ("graph500", "lammps", "gadget2"):
        discovered, manual = scores[name]
        assert discovered.lift > manual.lift + 0.1, name

    # MiniFE: "nearly identical".
    discovered, manual = scores["minife"]
    assert abs(discovered.lift - manual.lift) < 0.1

    # Graph500's manual sites show the gap problem (coverage hole).
    assert scores["graph500"][1].coverage < 0.7
    assert scores["graph500"][0].coverage > 0.95

    result = experiments["miniamr"]
    benchmark(score_series, result.discovered_series(),
              result.analysis.phase_model.labels, "discovered")
