"""Table III: MiniFE instrumented functions."""

import pytest

from benchmarks._common import run_table_bench
from repro.core.model import InstType


def test_table3_minife(benchmark, experiments, save_artifact):
    result = run_table_bench(
        benchmark, experiments, save_artifact, "minife",
        required_sites={
            ("cg_solve", InstType.LOOP),
            ("sum_in_symm_elem_matrix", InstType.BODY),
            ("init_matrix", InstType.LOOP),
            ("generate_matrix_structure", InstType.LOOP),
            ("impose_dirichlet", InstType.LOOP),
            ("make_local_matrix", InstType.LOOP),
        },
        artifact="table3_minife",
    )
    # cg_solve split across two phases (paper phases 1 and 4), with
    # make_local_matrix and generate_matrix_structure as minor co-sites.
    cg_rows = [s for s in result.analysis.sites() if s.function == "cg_solve"]
    assert len(cg_rows) == 2
    shares = {}
    for s in result.analysis.sites():
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert shares["cg_solve"] == pytest.approx(64.2, abs=6.0)
