"""Fleet scaling: classify throughput and submit latency vs worker count.

Spawns a real fleet (worker subprocesses behind the proxy router) at
1/2/4/8 workers, drives the same synthetic load through each size, and
records classify throughput plus client-observed p50/p99 submit latency
into ``BENCH_perf.json`` under ``"fleet_scaling"``.

Honesty note: consistent hashing makes throughput scale only when the
box has cores to back the workers — on a single-core runner the workers
time-slice one CPU and the curve is flat (the record says so via
``cpu_count``).  The ≥3x acceptance at 4 workers is therefore gated on
``os.cpu_count() >= 4``; every run still asserts the routing invariants
(all streams drained, no errors, work spread across workers).

Marked ``slow``: tier-1 (``pytest -q`` over ``tests/``) never runs this.
Quick mode (``BENCH_PERF_QUICK=1``) runs 1/2 workers with a short load
as a CI smoke and does not rewrite the recorded numbers.
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.bench_perf_regression import QUICK, _merge_into_bench_json
from repro.core.model_io import save_model
from repro.core.pipeline import AnalysisConfig, analyze_snapshots
from repro.fleet import FleetConfig, FleetRouter, RouterConfig, WorkerSupervisor
from repro.service import (
    Endpoint,
    PhaseClient,
    RetryPolicy,
    SyntheticLoadGenerator,
)

FLEET_SIZES = (1, 2) if QUICK else (1, 2, 4, 8)
N_STREAMS = 4 if QUICK else 8
N_INTERVALS = 20 if QUICK else 40
LATENCY_PROBES = 50 if QUICK else 200

RETRY = RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=0.5,
                    request_timeout=30.0)


def _measure_fleet(n_workers: int, root: str, model_path: str,
                   gen: SyntheticLoadGenerator) -> dict:
    config = FleetConfig(root=root, n_workers=n_workers,
                         model_path=model_path, worker_threads=1,
                         checkpoint_interval=10.0, ping_interval=2.0,
                         log_level="error")
    with WorkerSupervisor(config) as supervisor:
        with FleetRouter(supervisor,
                         RouterConfig(endpoint=Endpoint.tcp("127.0.0.1", 0),
                                      mode="proxy",
                                      log_level="error")) as router:
            load = gen.run(router.endpoint, N_STREAMS, N_INTERVALS,
                           stream_prefix=f"bench{n_workers}", retry=RETRY)
            assert load.processed == N_STREAMS * N_INTERVALS, (
                f"{n_workers} workers: processed {load.processed}")
            assert all(r.drained and not r.error
                       for r in load.streams.values())

            # client-observed submit latency on a dedicated stream
            latencies = []
            samples = gen.stream(99, LATENCY_PROBES)
            with PhaseClient(router.endpoint, retry=RETRY) as client:
                client.hello("latency-probe")
                for seq, sample in enumerate(samples):
                    t0 = time.perf_counter()
                    client.snapshot("latency-probe", seq, sample)
                    latencies.append(time.perf_counter() - t0)
                client.bye("latency-probe")

            stats = router.merged_stats()
            spread = {wid: rec["processed"]
                      for wid, rec in stats["per_worker"].items()}
    lat = np.asarray(latencies)
    return {
        "throughput_per_s": round(load.processed / load.elapsed, 1),
        "elapsed_s": round(load.elapsed, 3),
        "submit_p50_ms": round(float(np.quantile(lat, 0.5)) * 1e3, 3),
        "submit_p99_ms": round(float(np.quantile(lat, 0.99)) * 1e3, 3),
        "processed_per_worker": spread,
        "latency_merge": stats["classify_latency_source"]["kind"],
    }


@pytest.mark.slow
def test_fleet_scaling_throughput(tmp_path):
    gen = SyntheticLoadGenerator()
    analysis = analyze_snapshots(
        gen.stream(0, 24), AnalysisConfig(kmax=4, drop_short_final=False))
    model_path = str(tmp_path / "model.ipm")
    save_model(analysis, model_path)

    results = {}
    for n_workers in FLEET_SIZES:
        results[str(n_workers)] = _measure_fleet(
            n_workers, str(tmp_path / f"fleet-{n_workers}"), model_path, gen)

    record = {
        "fleet_scaling": {
            "cpu_count": os.cpu_count(),
            "n_streams": N_STREAMS,
            "n_intervals": N_INTERVALS,
            "mode": "proxy",
            "unit": {"throughput": "intervals/s", "latency": "ms"},
            "workers": results,
        },
    }
    if not QUICK:
        _merge_into_bench_json(record)
    print()
    print(json.dumps(record, indent=2, sort_keys=True))

    # Routing invariants hold at every size: multi-worker fleets spread
    # the streams (consistent hashing never piles everything on one
    # worker at these sizes) and merge latency exactly.
    for n_workers, rec in results.items():
        if int(n_workers) > 1:
            busy = [w for w, n in rec["processed_per_worker"].items() if n > 0]
            assert len(busy) > 1, (n_workers, rec["processed_per_worker"])
        assert rec["latency_merge"] in ("merged-window", "exact")

    # The scaling acceptance needs actual cores behind the workers.
    if not QUICK and "4" in results and (os.cpu_count() or 1) >= 4:
        speedup = (results["4"]["throughput_per_s"]
                   / results["1"]["throughput_per_s"])
        assert speedup >= 3.0, f"4-worker speedup only {speedup:.2f}x"
