"""Table V: LAMMPS instrumented functions."""

import pytest

from benchmarks._common import run_table_bench


def test_table5_lammps(benchmark, experiments, save_artifact):
    result = run_table_bench(
        benchmark, experiments, save_artifact, "lammps",
        required_sites=set(),  # designations vary; asserted by shape below
        artifact="table5_lammps",
    )
    sites = result.analysis.sites()
    functions = {s.function for s in sites}
    assert functions >= {"PairLJCut::compute", "NPairHalfBinNewtonTri::build",
                         "Velocity::create"}
    # Compute fully covers two phases ("should really be a single phase").
    full_compute = [s for s in sites
                    if s.function == "PairLJCut::compute" and s.phase_pct > 99.0]
    assert len(full_compute) == 2
    shares = {}
    for s in sites:
        shares[s.function] = shares.get(s.function, 0.0) + s.app_pct
    assert shares["PairLJCut::compute"] == pytest.approx(89.8, abs=7.0)
    assert shares["NPairHalfBinNewtonTri::build"] == pytest.approx(9.0, abs=4.0)
