"""Figure 2: Graph500 phase heartbeats (discovered + manual)."""

from benchmarks._common import run_figure_bench


def test_fig2_graph500(benchmark, experiments, save_artifact):
    figure = run_figure_bench(benchmark, experiments, save_artifact,
                              "graph500", "fig2_graph500_heartbeats")
    assert figure.manual is not None
    # Paper narration: manual heartbeats (longer than the interval) show
    # gaps and never count more than one per interval; the discovered
    # low-level init site fills its span without gaps.
    result = experiments["graph500"]
    manual_labels = {b.hb_id: b.function for b in result.manual_bindings}
    for hb_id, function in manual_labels.items():
        if function in ("validate_bfs_result", "run_bfs"):
            assert figure.manual.counts[hb_id].max() <= 1.0 + 1e-9

    disc_labels = {b.hb_id: b.function for b in result.discovered_bindings}
    moe = next(i for i, f in disc_labels.items() if f == "make_one_edge")
    assert not figure.discovered.gaps(moe)
